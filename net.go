package openoptics

import (
	"fmt"
	"sort"
	"time"

	"openoptics/internal/controller"
	"openoptics/internal/core"
	"openoptics/internal/fabric"
	"openoptics/internal/hostsim"
	"openoptics/internal/sim"
	"openoptics/internal/switchsim"
	"openoptics/internal/syncproto"
	"openoptics/internal/telemetry"
	"openoptics/internal/traffic"
	"openoptics/internal/transport"
)

// Net is an OpenOptics network instance: endpoint switches and hosts wired
// to an emulated optical fabric (and optionally an electrical fabric),
// plus the optical controller's deployment entry points of Table 1.
type Net struct {
	Cfg Config

	eng   *sim.Engine
	sched *core.Schedule
	// pool is the per-net packet slab pool every device on this Net
	// allocates from; sinks (delivery, drops) recycle into it. Per-net
	// rather than global so concurrent sweep jobs in one process never
	// contend.
	pool *core.PacketPool

	optical *fabric.OpticalFabric
	elec    *fabric.ElectricalFabric
	cp      *switchsim.ControlPlane

	switches []*switchsim.Switch
	hosts    []*hostsim.Host
	stacks   []*transport.Stack

	syncModel *syncproto.Model

	layers  map[int]layer
	started bool
	// deployGen counts DeployRouting invocations (telemetry).
	deployGen int

	// epoch/reconfigs/lastReprogramNs track mid-run schedule hot-swaps
	// (Net.Reprogram); the observability plane attributes anomalies to
	// reconfiguration events through them.
	epoch           int
	reconfigs       uint64
	lastReprogramNs int64

	// onMetrics holds deferred registry hooks (OnMetrics) until Metrics()
	// builds the registry.
	onMetrics []func(*telemetry.Registry)

	// reg is the lazily built metrics registry (observe.go).
	reg *telemetry.Registry
	// tracer is the attached in-band packet tracer, if any (observe.go).
	tracer *telemetry.Tracer

	// shardProf/shardGroup hold the enabled shard-affinity profile and its
	// nodes-per-partition group size (engine_report.go).
	shardProf  *sim.ShardProfile
	shardGroup int

	// audit is the attached determinism auditor (audit.go), nil when off.
	audit *Auditor
	// flightDump, set by AttachFlightRecorder, forces a flight-recorder
	// dump with a reason — the auditor fires it on invariant violations.
	flightDump func(reason string)
}

type layer struct {
	paths  []core.Path
	lookup core.LookupMode
	mp     core.MultipathMode
}

// New builds a network from the static configuration. The returned Net is
// idle: deploy a topology and routing, start applications on Endpoints(),
// then Run.
func New(cfg Config) (*Net, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	eng := sim.New()
	n := &Net{
		Cfg:  cfg,
		eng:  eng,
		pool: core.NewPacketPool(),
		sched: &core.Schedule{
			NumSlices:     1,
			SliceDuration: time.Duration(cfg.SliceDurationNs),
			Guard:         time.Duration(cfg.guard()),
		},
		optical:   fabric.NewOpticalFabric(eng),
		cp:        switchsim.NewControlPlane(eng),
		syncModel: syncproto.NewModel(cfg.SyncErrorNs, cfg.Seed),
		layers:    make(map[int]layer),
	}
	if cfg.SyncErrorNs == 0 {
		n.syncModel = nil
	}
	n.optical.CutThroughDelay = cfg.CutThroughNs
	if cfg.ElectricalGbps > 0 {
		n.elec = fabric.NewElectricalFabric(eng)
		n.elec.PipelineDelay = cfg.SwitchPipelineNs
	}

	lineBps := cfg.lineRateBps()
	resp := switchsim.RespDrop
	switch cfg.Response {
	case "trim":
		resp = switchsim.RespTrim
	case "defer":
		resp = switchsim.RespDefer
	}

	for i := 0; i < cfg.NodeNum; i++ {
		node := core.NodeID(i)
		var off int64
		if n.syncModel != nil {
			off = n.syncModel.OffsetFor(uint64(i))
		}
		sw := switchsim.New(eng, switchsim.Config{
			ID:                       node,
			Schedule:                 n.sched,
			NumCalendarQueues:        cfg.CalendarQueues,
			BufferBytes:              cfg.BufferBytes,
			PipelineDelay:            cfg.SwitchPipelineNs,
			ClockOffset:              off,
			EQOUpdateInterval:        cfg.EQOIntervalNs,
			CongestionDetection:      cfg.CongestionDetection,
			CongestionThresholdBytes: cfg.CongestionThresholdBytes,
			Response:                 resp,
			PushBack:                 cfg.PushBack,
			OffloadRank:              cfg.OffloadRank,
			Seed:                     cfg.Seed ^ uint64(i)<<16,
		}, cfg.NodeNum)
		sw.AttachControlPlane(n.cp)
		sw.Pool = n.pool
		n.switches = append(n.switches, sw)

		// Optical uplinks.
		for u := 0; u < cfg.Uplink; u++ {
			fp := core.PortID(i*cfg.Uplink + u)
			link := fabric.NewLink(eng,
				fabric.Endpoint{Dev: sw, Port: core.PortID(u)},
				fabric.Endpoint{Dev: n.optical, Port: fp},
				lineBps, cfg.PropDelayNs)
			n.optical.Attach(node, core.PortID(u), link)
			sw.AttachUplink(core.PortID(u), link)
		}
		// Electrical uplink.
		if n.elec != nil {
			ep := n.elecPort()
			link := fabric.NewLink(eng,
				fabric.Endpoint{Dev: sw, Port: ep},
				fabric.Endpoint{Dev: n.elec, Port: 0},
				int64(cfg.ElectricalGbps*1e9), cfg.PropDelayNs)
			n.elec.Attach(node, link)
			sw.AttachElectrical(ep, link)
		}
		// Hosts and downlinks.
		for j := 0; j < cfg.HostsPerNode; j++ {
			hid := core.HostID(i*cfg.HostsPerNode + j)
			var hoff int64
			if n.syncModel != nil {
				hoff = n.syncModel.OffsetFor(0x80000000 | uint64(hid))
			}
			h := hostsim.New(eng, hostsim.Config{
				ID:             hid,
				Node:           node,
				Schedule:       n.sched,
				ClockOffset:    hoff,
				FlowPausing:    cfg.FlowPausing,
				ElephantBytes:  cfg.ElephantBytes,
				ReportInterval: cfg.ReportIntervalNs,
				Seed:           cfg.Seed ^ uint64(hid)<<24,
			})
			dp := core.PortID(cfg.Uplink + j)
			if n.elec != nil {
				dp = core.PortID(cfg.Uplink + 1 + j)
			}
			link := fabric.NewLink(eng,
				fabric.Endpoint{Dev: sw, Port: dp},
				fabric.Endpoint{Dev: h, Port: 0},
				lineBps, cfg.PropDelayNs/2+1)
			sw.AttachDownlink(dp, hid, link)
			h.AttachLink(link)
			h.Pool = n.pool
			n.hosts = append(n.hosts, h)
			st := transport.NewStack(eng, h, transport.TCPConfig{
				DupAckThreshold: cfg.DupAckThreshold,
				RTO:             cfg.RTONs,
				TDTCPDivisions:  cfg.TDTCPDivisions,
				TDTCPPeriodNs:   cfg.SliceDurationNs,
			}, cfg.Seed^uint64(hid)<<8)
			st.Pool = n.pool
			n.stacks = append(n.stacks, st)
		}
	}
	if Observe != nil {
		Observe(n)
	}
	return n, nil
}

// Observe, when set, is invoked with every Net this package constructs,
// right after construction and before topology deployment. It is the hook
// command-line drivers use to attach telemetry (tracers, metrics
// registries, engine profiling) to networks built deep inside experiment
// drivers, without threading options through every driver.
var Observe func(*Net)

// elecPort returns the switch port wired to the electrical fabric.
func (n *Net) elecPort() core.PortID { return core.PortID(n.Cfg.Uplink) }

// ElectricalPort returns the switch port wired to the electrical fabric,
// for programs that hand-craft hybrid paths.
func (n *Net) ElectricalPort() core.PortID { return n.elecPort() }

// isExternalPort reports whether (node, port) exits the optical schedule.
func (n *Net) isExternalPort(_ core.NodeID, p core.PortID) bool {
	return n.elec != nil && p == n.elecPort()
}

// Engine exposes the discrete-event engine (applications schedule on it).
func (n *Net) Engine() *sim.Engine { return n.eng }

// PacketPool exposes the per-net packet slab pool (leak diagnostics; the
// Outstanding count must be zero once all in-flight packets reach a sink).
func (n *Net) PacketPool() *core.PacketPool { return n.pool }

// Schedule returns the deployed optical schedule.
func (n *Net) Schedule() *core.Schedule { return n.sched }

// Switches returns the endpoint switches, indexed by node id.
func (n *Net) Switches() []*switchsim.Switch { return n.switches }

// Hosts returns all hosts, indexed by host id.
func (n *Net) Hosts() []*hostsim.Host { return n.hosts }

// OpticalFabric returns the emulated optical fabric.
func (n *Net) OpticalFabric() *fabric.OpticalFabric { return n.optical }

// ElectricalFabric returns the electrical fabric (nil if not configured).
func (n *Net) ElectricalFabric() *fabric.ElectricalFabric { return n.elec }

// Endpoints returns the application handles, one per host.
func (n *Net) Endpoints() []traffic.Endpoint {
	eps := make([]traffic.Endpoint, len(n.hosts))
	for i, h := range n.hosts {
		eps[i] = traffic.Endpoint{Host: h.Cfg.ID, Node: h.Cfg.Node, Stack: n.stacks[i]}
	}
	return eps
}

// DeployTopo implements deploy_topo() (Table 1): feasibility-check the
// circuits against the configured OCS structure and program the optical
// fabric. numSlices is the optical cycle length the circuits were
// generated for (1 for TA/static topologies). The cycle length is fixed
// once the network has started; only the circuits may change afterwards
// (TA reconfiguration, SORN re-skewing).
func (n *Net) DeployTopo(circuits []core.Circuit, numSlices int) error {
	if numSlices < 1 {
		return fmt.Errorf("openoptics: numSlices must be >= 1")
	}
	if n.started && numSlices != n.sched.NumSlices {
		return fmt.Errorf("openoptics: cycle length is fixed after start (%d != %d)",
			numSlices, n.sched.NumSlices)
	}
	cand := &core.Schedule{
		NumSlices:     numSlices,
		SliceDuration: n.sched.SliceDuration,
		Guard:         n.sched.Guard,
		Circuits:      circuits,
	}
	if _, err := controller.CompileTopo(cand, controller.OCSStructure{
		Count:          n.Cfg.OCSCount,
		PortsPerOCS:    n.Cfg.OCSPorts,
		UplinksPerNode: n.Cfg.Uplink,
		ReconfDelayNs:  n.Cfg.ReconfDelayNs,
	}); err != nil {
		return err
	}
	n.sched.NumSlices = numSlices
	n.sched.Circuits = circuits
	if err := n.optical.ApplySchedule(n.sched); err != nil {
		return err
	}
	ix := core.NewConnIndex(n.sched)
	for _, sw := range n.switches {
		sw.InstallConnIndex(ix)
	}
	return nil
}

// DeployRouting implements deploy_routing() (Table 1) at layer 0.
func (n *Net) DeployRouting(paths []core.Path, lookup core.LookupMode, mp core.MultipathMode) error {
	return n.DeployRoutingLayer(0, paths, lookup, mp)
}

// DeployRoutingLayer deploys paths at the given priority layer, replacing
// that layer's previous contents and rebuilding every node's time-flow
// table from all layers. Hybrid TA-1 architectures keep default
// (electrical) routes at layer 0 and deploy opportunistic circuit routes
// at layer 1, exactly the "higher-priority routes atop existing ones"
// pattern of §4.3.
func (n *Net) DeployRoutingLayer(prio int, paths []core.Path, lookup core.LookupMode, mp core.MultipathMode) error {
	old, hadOld := n.layers[prio]
	n.layers[prio] = layer{paths: paths, lookup: lookup, mp: mp}
	if err := n.rebuildTables(); err != nil {
		// Roll back the failed layer so the network keeps its last good
		// deployment.
		if hadOld {
			n.layers[prio] = old
		} else {
			delete(n.layers, prio)
		}
		if rerr := n.rebuildTables(); rerr != nil {
			return fmt.Errorf("openoptics: deploy failed (%v) and rollback failed: %w", err, rerr)
		}
		return err
	}
	n.deployGen++
	return nil
}

// ClearRoutingLayer removes a priority layer (e.g. expired circuit routes).
func (n *Net) ClearRoutingLayer(prio int) error {
	delete(n.layers, prio)
	return n.rebuildTables()
}

func (n *Net) rebuildTables() error {
	prios := make([]int, 0, len(n.layers))
	for p := range n.layers {
		prios = append(prios, p)
	}
	sort.Ints(prios)
	merged := make(map[core.NodeID]*core.Table)
	for _, p := range prios {
		l := n.layers[p]
		cr, err := controller.CompileRouting(n.sched, l.paths, controller.CompileOptions{
			Lookup:       l.lookup,
			Multipath:    l.mp,
			Priority:     p,
			ExternalPort: n.isExternalPort,
		})
		if err != nil {
			return err
		}
		for node, tab := range cr.Tables {
			m := merged[node]
			if m == nil {
				m = core.NewTable()
				merged[node] = m
			}
			for _, e := range tab.Entries() {
				if err := m.Add(*e); err != nil {
					return fmt.Errorf("openoptics: merging layer %d at N%d: %w", p, node, err)
				}
			}
		}
	}
	for _, sw := range n.switches {
		if tab, ok := merged[sw.ID()]; ok {
			sw.InstallTable(tab)
		} else {
			sw.InstallTable(core.NewTable())
		}
	}
	return nil
}

// Add implements the add() API: install one time-flow table entry directly
// on a node (debugging and custom experiments).
func (n *Net) Add(e core.Entry, node core.NodeID) error {
	if int(node) < 0 || int(node) >= len(n.switches) {
		return fmt.Errorf("openoptics: no node N%d", node)
	}
	return n.switches[node].Table().Add(e)
}

// ElectricalPaths returns one-hop paths through the electrical fabric for
// every node pair — the default routes of Clos baselines and hybrid
// architectures.
func (n *Net) ElectricalPaths() ([]core.Path, error) {
	if n.elec == nil {
		return nil, fmt.Errorf("openoptics: no electrical fabric configured (set electrical_gbps)")
	}
	var out []core.Path
	for s := 0; s < n.Cfg.NodeNum; s++ {
		for d := 0; d < n.Cfg.NodeNum; d++ {
			if s == d {
				continue
			}
			out = append(out, core.Path{
				Src: core.NodeID(s), Dst: core.NodeID(d),
				TS: core.WildcardSlice, Weight: 1,
				Hops: []core.Hop{{Node: core.NodeID(s), Egress: n.elecPort(), DepSlice: core.WildcardSlice}},
			})
		}
	}
	return out, nil
}

// Start arms all devices. Run calls it implicitly; it exists for tests
// that drive the engine directly.
func (n *Net) Start() {
	if n.started {
		return
	}
	n.started = true
	for _, sw := range n.switches {
		if n.reg != nil {
			// The registry was built before deployment; attach the
			// per-slice counters now that the cycle length is fixed.
			sw.AttachMetrics(n.reg)
		}
		sw.Start()
	}
	for _, h := range n.hosts {
		h.Start()
	}
}

// Run advances the network by d of virtual time.
func (n *Net) Run(d time.Duration) {
	n.Start()
	n.eng.RunFor(d)
}

// Collect implements collect() (Table 1): run the network for the
// collection interval, then return the global traffic matrix aggregated
// from all switches (sent bytes plus host-reported pending bytes). The
// matrix is *windowed* — it covers only the interval since the previous
// Collect (delta semantics), so periodic collectors see per-window demand
// directly; two consecutive windows sum to the CollectTotal delta over the
// same span.
func (n *Net) Collect(interval time.Duration) core.TM {
	n.Run(interval)
	tm := core.NewTM(n.Cfg.NodeNum)
	for _, sw := range n.switches {
		part := sw.CollectTM()
		for i := range part {
			for j := range part[i] {
				tm[i][j] += part[i][j]
			}
		}
	}
	return tm
}

// CollectTotal returns the cumulative traffic matrix since time zero:
// every window Collect has returned plus the still-open one. Unlike
// Collect it advances no time and resets nothing.
func (n *Net) CollectTotal() core.TM {
	tm := core.NewTM(n.Cfg.NodeNum)
	for _, sw := range n.switches {
		part := sw.CumulativeTM()
		for i := range part {
			for j := range part[i] {
				tm[i][j] += part[i][j]
			}
		}
	}
	return tm
}

// BufferUsage implements buffer_usage(): current buffered bytes on the
// port (NoPort = whole switch).
func (n *Net) BufferUsage(node core.NodeID, port core.PortID) int64 {
	if int(node) < 0 || int(node) >= len(n.switches) {
		return 0
	}
	return n.switches[node].BufferUsage(port)
}

// BWUsage implements bw_usage(): bytes transmitted on the port so far.
func (n *Net) BWUsage(node core.NodeID, port core.PortID) uint64 {
	if int(node) < 0 || int(node) >= len(n.switches) {
		return 0
	}
	return n.switches[node].BWUsage(port)
}

// Telemetry is one periodic monitoring snapshot (the interval-based forms
// of buffer_usage and bw_usage in Table 1).
type Telemetry struct {
	// Time is the virtual timestamp of the snapshot.
	Time int64
	// BufferBytes is each node's total buffered bytes.
	BufferBytes []int64
	// TxBytes is each node's cumulative transmitted bytes over all ports.
	TxBytes []uint64
}

// Monitor invokes fn with a telemetry snapshot every interval of virtual
// time, until fn returns false. Arm before Run.
func (n *Net) Monitor(interval time.Duration, fn func(Telemetry) bool) {
	iv := int64(interval)
	if iv <= 0 {
		iv = int64(time.Millisecond)
	}
	n.eng.EveryClass(iv, iv, sim.ClassTelemetry, func() bool {
		t := Telemetry{Time: n.eng.Now()}
		for _, sw := range n.switches {
			t.BufferBytes = append(t.BufferBytes, sw.BufferUsage(core.NoPort))
			var tx uint64
			for p := core.PortID(0); int(p) < n.Cfg.Uplink; p++ {
				tx += sw.BWUsage(p)
			}
			if n.elec != nil {
				// The electrical uplink transmits too; bw_usage covers
				// every port that leaves the switch.
				tx += sw.BWUsage(n.elecPort())
			}
			t.TxBytes = append(t.TxBytes, tx)
		}
		return fn(t)
	})
}

// Counters sums the switch counters across the network. The sum is
// reflection-based (Counters.Add), so new counter fields aggregate
// automatically.
func (n *Net) Counters() switchsim.Counters {
	var t switchsim.Counters
	for _, sw := range n.switches {
		t.Add(&sw.Counters)
	}
	return t
}
