package openoptics

import (
	"openoptics/internal/core"
	"openoptics/internal/engineobs"
	"openoptics/internal/fabric"
	"openoptics/internal/sim"
)

// Engine observatory wiring: the Net-level switches for the event-
// causality ledger and the shard-affinity profile, and the report builder
// `ooctl engine` consumes. Both instruments follow the tracer's cost
// discipline — a Net that never enables them pays a nil check per
// scheduled event (ledger) and per link send (shard profile).

// AttachEngineLedger starts recording event causality on this Net's
// engine, sampling chain capture every sampleEvery root events (rounded up
// to a power of two; ≤1 = capture every chain). Edge, fan-out, and same-
// instant aggregation are always complete while attached. Returns the
// ledger for direct inspection; EngineReport folds it in automatically.
func (n *Net) AttachEngineLedger(sampleEvery uint64) *sim.Ledger {
	l := sim.NewLedger(sampleEvery)
	n.eng.AttachLedger(l)
	return l
}

// EnableShardProfile starts recording the cross-partition event-flow
// profile for a hypothetical engine sharding into `parts` partitions.
// Partitions are contiguous ToR groups: nodes 0..g-1 form partition 0,
// g..2g-1 partition 1, and so on with g = ceil(NodeNum/parts); a node's
// hosts and edge links belong to its partition, and control messages to
// the optical controller (NoNode) are charged to partition 0, where a
// sharded engine would co-locate the controller. parts clamps to
// [1, NodeNum].
func (n *Net) EnableShardProfile(parts int) *sim.ShardProfile {
	if parts < 1 {
		parts = 1
	}
	if parts > n.Cfg.NodeNum {
		parts = n.Cfg.NodeNum
	}
	group := (n.Cfg.NodeNum + parts - 1) / parts
	partOf := func(id core.NodeID) int {
		if id == core.NoNode || int(id) < 0 {
			return 0
		}
		p := int(id) / group
		if p >= parts {
			p = parts - 1
		}
		return p
	}
	prof := sim.NewShardProfile(parts)
	n.shardProf, n.shardGroup = prof, group
	n.optical.EnableShardProfile(prof, partOf)
	if n.elec != nil {
		n.elec.EnableShardProfile(prof, partOf)
	}
	n.cp.Prof, n.cp.PartOf = prof, partOf
	for _, sw := range n.switches {
		part := partOf(sw.ID())
		sw.ForEachLink(func(l *fabric.Link) {
			l.Prof, l.PartA, l.PartB = prof, part, part
		})
	}
	return prof
}

// ShardProfile returns the enabled shard profile, or nil.
func (n *Net) ShardProfile() *sim.ShardProfile { return n.shardProf }

// PoolStats returns the packet pool's counters (cheap; no copy of network
// state, unlike Snapshot).
func (n *Net) PoolStats() core.PoolStats { return n.pool.Stats() }

// EngineReport builds the engine-observatory report from whatever
// instruments are enabled: pressure and pool sections always, the ledger
// section when AttachEngineLedger was called (the ledger is flushed —
// call after the run), the shard section when EnableShardProfile was.
func (n *Net) EngineReport() *engineobs.Report {
	events := n.eng.Processed
	packets := n.pool.Stats().Gets
	r := &engineobs.Report{
		SchemaVersion:   engineobs.SchemaVersion,
		Events:          events,
		Packets:         packets,
		EventsPerPacket: engineobs.EventsPerPacketOf(events, packets),
		Pool:            engineobs.BuildPool(n.pool.Stats()),
	}
	pressure := n.eng.SchedPressure()
	r.Pressure = &pressure
	if l := n.eng.Ledger(); l != nil {
		l.Flush()
		r.Ledger = engineobs.BuildLedger(l, packets)
	}
	if n.shardProf != nil {
		r.Shards = engineobs.BuildShards(n.shardProf, n.shardGroup)
	}
	return r
}
