// OCS choice: the Case III study (§6) as a program — pick an optical
// device class by emulating your workload against its slice duration.
// Four recently proposed OCS technologies are characterized purely by the
// slice duration they sustain; RotorNet with VLB and with UCMP runs the
// same latency-sensitive workload on each, exposing the performance/cost
// sweet spot.
//
//	go run ./examples/ocschoice
package main

import (
	"fmt"
	"log"
	"time"

	"openoptics"
	"openoptics/internal/arch"
	"openoptics/internal/traffic"
)

type device struct {
	name    string
	sliceNs int64
	guardNs int64
	cost    string // qualitative, from the optics literature
}

func main() {
	devices := []device{
		{"AWGR (2 µs)", 2_000, 200, "$$$$"},
		{"PLZT (20 µs)", 20_000, 2_000, "$$$"},
		{"DMD (100 µs)", 100_000, 10_000, "$$"},
		{"LC (200 µs)", 200_000, 20_000, "$"},
	}
	fmt.Printf("%-14s %-6s %-28s %-28s\n", "device", "cost", "VLB mice p50/p99", "UCMP mice p50/p99")
	for _, d := range devices {
		vlb := run(d, arch.SchemeVLB)
		ucmp := run(d, arch.SchemeUCMP)
		fmt.Printf("%-14s %-6s %-28s %-28s\n", d.name, d.cost, vlb, ucmp)
	}
	fmt.Println("\nReading: VLB tail grows with the slice duration (wait-at-intermediate),")
	fmt.Println("UCMP stays flat into the cheap device range — the Fig. 10 sweet spot.")
}

func run(d device, scheme arch.Scheme) string {
	o := arch.Options{
		Nodes: 8, HostsPerNode: 1, Seed: 7,
		SliceDurationNs: d.sliceNs,
		Tune: func(c *openoptics.Config) {
			c.GuardNs = d.guardNs
			c.CongestionDetection = true
			c.Response = "defer"
		},
	}
	in, err := arch.RotorNet(o, scheme)
	if err != nil {
		log.Fatal(err)
	}
	eps := in.Net.Endpoints()
	sink := traffic.NewSink(eps)
	mc := traffic.NewMemcached(in.Net.Engine(), eps[0], eps[1:], 7)
	dur := 40 * time.Millisecond
	mc.Start(int64(dur))
	if err := in.Run(dur + dur/2); err != nil {
		log.Fatal(err)
	}
	s := sink.FCTSample(traffic.PortMemcached)
	return fmt.Sprintf("%.0f µs / %.0f µs", s.Percentile(50)/1e3, s.Percentile(99)/1e3)
}
