// Hierarchical: the Fig. 5 (d) TA+TO hybrid for ML workloads — each rack
// runs a traffic-oblivious scale-up network among its GPU machines
// (round-robin + VLB, rich connectivity), while the inter-rack scale-out
// network is traffic-aware (BvN circuit scheduling + WCMP), adapting to
// locality across racks. The two levels are separate OpenOptics networks
// with their own static configurations, exactly as the paper's snippet
// creates a rack_conf next to the core config.
//
//	go run ./examples/hierarchical
package main

import (
	"fmt"
	"log"
	"time"

	"openoptics"
	"openoptics/internal/traffic"
)

func main() {
	const racks, hostsPerRack = 4, 8

	// Intra-rack scale-up networks: one TO network per rack.
	var rackNets []*openoptics.Net
	for r := 0; r < racks; r++ {
		rn, err := openoptics.New(openoptics.Config{
			Node:            "host", // host-centric: NICs on the rack fabric
			NodeNum:         hostsPerRack,
			Uplink:          1,
			SliceDurationNs: 10_000, // fast scale-up slices
			Seed:            uint64(100 + r),
		})
		if err != nil {
			log.Fatal(err)
		}
		cts, ns, err := openoptics.RoundRobin(hostsPerRack, 1)
		if err != nil {
			log.Fatal(err)
		}
		if err := rn.DeployTopo(cts, ns); err != nil {
			log.Fatal(err)
		}
		if err := rn.DeployRouting(rn.VLB(cts, ns, openoptics.RoutingOptions{}),
			openoptics.LookupHop, openoptics.MultipathPacket); err != nil {
			log.Fatal(err)
		}
		rackNets = append(rackNets, rn)
	}
	fmt.Printf("deployed %d intra-rack TO networks (%d hosts each)\n", racks, hostsPerRack)

	// Inter-rack scale-out network: TA with BvN scheduling over rack ToRs.
	core, err := openoptics.New(openoptics.Config{
		Node:            "rack",
		NodeNum:         racks,
		Uplink:          2,
		SliceDurationNs: 100_000,
		Seed:            9,
	})
	if err != nil {
		log.Fatal(err)
	}
	numSlices := racks - 1
	cts, ns, err := openoptics.BvN(openoptics.NewTM(racks), numSlices, numSlices)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.DeployTopo(cts, ns); err != nil {
		log.Fatal(err)
	}
	if err := core.DeployRouting(core.Direct(cts, ns, openoptics.RoutingOptions{}),
		openoptics.LookupHop, openoptics.MultipathNone); err != nil {
		log.Fatal(err)
	}

	// Run ring allreduce inside each rack (the scale-up traffic) while the
	// scale-out network adapts to inter-rack shuffles every epoch.
	for r, rn := range rackNets {
		eps := rn.Endpoints()
		ar := traffic.NewAllReduce(rn.Engine(), eps, 2_000_000)
		r := r
		ar.OnDone = func(d int64) {
			fmt.Printf("rack %d allreduce (2 MB x %d hosts): %.3f ms\n",
				r, hostsPerRack, float64(d)/1e6)
		}
		ar.Start()
		rn.Run(40 * time.Millisecond)
	}

	coreEps := core.Endpoints()
	sink := traffic.NewSink(coreEps)
	rp, err := traffic.NewReplay(core.Engine(), coreEps, traffic.Hadoop(), 0.3, 100e9, 9)
	if err != nil {
		log.Fatal(err)
	}
	rp.Start(int64(120 * time.Millisecond))
	for epoch := 0; epoch < 3; epoch++ {
		tm := core.Collect(40 * time.Millisecond) // "1h" scaled down
		cts, ns, err := openoptics.BvN(tm, numSlices, numSlices)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.DeployTopo(cts, ns); err != nil {
			log.Fatal(err)
		}
		if err := core.DeployRouting(core.Direct(cts, ns, openoptics.RoutingOptions{}),
			openoptics.LookupHop, openoptics.MultipathNone); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scale-out epoch %d: re-scheduled circuits for %.1f MB of demand\n",
			epoch, tm.Total()/1e6)
	}
	fmt.Printf("inter-rack shuffle FCT: %s\n", sink.FCTSample(traffic.PortReplay).Summary())
}
