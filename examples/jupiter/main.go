// Jupiter: the Fig. 5 (b) traffic-aware program — an all-optical static
// topology that starts as a uniform mesh with WCMP routing and evolves
// gradually toward the observed traffic matrix, deploying routing before
// topology so traffic shifts seamlessly.
//
//	go run ./examples/jupiter
package main

import (
	"fmt"
	"log"
	"time"

	"openoptics"
	"openoptics/internal/traffic"
)

func main() {
	const n, uplink = 8, 3
	net, err := openoptics.New(openoptics.Config{
		Node:    "rack",
		NodeNum: n,
		Uplink:  uplink,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// circuits = jupiter(TM=null) — the uniform starting mesh.
	circuits, err := openoptics.Jupiter(nil, nil, n, uplink, 0)
	if err != nil {
		log.Fatal(err)
	}
	paths := net.WCMP(circuits, openoptics.RoutingOptions{})
	if err := net.DeployTopo(circuits, 1); err != nil {
		log.Fatal(err)
	}
	if err := net.DeployRouting(paths, openoptics.LookupHop, openoptics.MultipathFlow); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold start: uniform mesh, %d circuits\n", len(circuits))

	// Skewed workload: two hot ToR pairs dominate.
	eps := net.Endpoints()
	sink := traffic.NewSink(eps)
	rp, err := traffic.NewReplay(net.Engine(), eps, traffic.Hadoop(), 0.3, 100e9, 7)
	if err != nil {
		log.Fatal(err)
	}
	rp.CrossNodeOnly = true
	rp.Start(int64(200 * time.Millisecond))

	// while TM = net.collect("24h"): evolve topology, routing first.
	prev := circuits
	for epoch := 0; epoch < 4; epoch++ {
		tm := net.Collect(50 * time.Millisecond) // scaled-down "24 h"
		next, err := openoptics.Jupiter(tm, prev, n, uplink, 0)
		if err != nil {
			log.Fatal(err)
		}
		moved := countMoves(prev, next)
		if err := net.DeployTopo(next, 1); err != nil {
			log.Fatal(err)
		}
		if err := net.DeployRouting(net.WCMP(next, openoptics.RoutingOptions{}),
			openoptics.LookupHop, openoptics.MultipathFlow); err != nil {
			log.Fatal(err)
		}
		prev = next
		fmt.Printf("epoch %d: observed %.1f MB of demand, moved %d circuits\n",
			epoch, tm.Total()/1e6, moved)
	}
	fmt.Printf("hadoop FCT: %s\n", sink.FCTSample(traffic.PortReplay).Summary())
}

func countMoves(prev, next []openoptics.Circuit) int {
	had := make(map[[2]openoptics.NodeID]bool, len(prev))
	for _, c := range prev {
		cc := c.Canon()
		had[[2]openoptics.NodeID{cc.A, cc.B}] = true
	}
	moves := 0
	for _, c := range next {
		cc := c.Canon()
		if !had[[2]openoptics.NodeID{cc.A, cc.B}] {
			moves++
		}
	}
	return moves
}
