// Mininet toolkit: the §5.3 educational environment — the OpenOptics
// stack as a live virtual network of goroutine devices moving real byte
// frames over channels, paced by a scaled virtual clock. The same topology
// and routing artifacts that drive the simulator backend deploy here
// unchanged.
//
//	go run ./examples/mininet
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/mininet"
	"openoptics/internal/routing"
	"openoptics/internal/topo"
)

func main() {
	const nodes = 4
	net, err := mininet.New(mininet.Config{
		Nodes:           nodes,
		SliceDurationNs: 200_000, // 200 µs virtual slices
		ClockScale:      200,     // x200 slowdown: one slice = 40 ms wall
	})
	if err != nil {
		log.Fatal(err)
	}

	// Same program as the quickstart, same compilation pipeline —
	// different backend.
	circuits, numSlices, err := topo.RoundRobin(nodes, 1)
	if err != nil {
		log.Fatal(err)
	}
	sched := &core.Schedule{NumSlices: numSlices,
		SliceDuration: 200 * time.Microsecond, Circuits: circuits}
	paths := routing.VLB(core.NewConnIndex(sched), routing.Options{})
	if err := net.Deploy(circuits, numSlices, paths,
		core.LookupHop, core.MultipathPacket); err != nil {
		log.Fatal(err)
	}

	var received atomic.Uint64
	var lastLatencyNs atomic.Int64
	net.Host(3).OnFrame = func(f mininet.Frame) {
		received.Add(1)
		var sentAt int64
		fmt.Sscanf(string(f.Payload()), "%d", &sentAt)
		lastLatencyNs.Store(net.Clock().Now() - sentAt)
	}
	if err := net.Start(); err != nil {
		log.Fatal(err)
	}
	defer net.Stop()

	fmt.Printf("live virtual network up: %d nodes, %d-slice rotor schedule\n", nodes, numSlices)
	const sent = 25
	for i := 0; i < sent; i++ {
		payload := fmt.Sprintf("%d", net.Clock().Now())
		net.Host(0).Send(3, 1000, 2000, []byte(payload))
		time.Sleep(10 * time.Millisecond)
	}
	// Let two full optical cycles pass so multi-hop frames drain.
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("delivered %d/%d frames (dropped %d), last one-way latency %.1f virtual µs\n",
		received.Load(), sent, net.Dropped.Load(), float64(lastLatencyNs.Load())/1e3)
}
