// Semi-oblivious: the Fig. 5 (c) TA+TO hybrid that OpenOptics makes
// possible by breaking the TA/TO boundary — a round-robin optical schedule
// with VLB routing that is periodically re-skewed toward the observed
// traffic matrix with the custom sorn() topology builder, giving hotspot
// pairs direct circuits in many slices.
//
//	go run ./examples/semioblivious
package main

import (
	"fmt"
	"log"
	"time"

	"openoptics"
	"openoptics/internal/core"
	"openoptics/internal/traffic"
	"openoptics/internal/transport"
)

func main() {
	const n, uplink = 8, 1
	net, err := openoptics.New(openoptics.Config{
		Node:            "rack",
		NodeNum:         n,
		Uplink:          uplink,
		SliceDurationNs: 100_000,
		DupAckThreshold: 5, // tolerate rotor-path reordering (Case II)
		Seed:            3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start as a plain TO network: round_robin + vlb.
	circuits, numSlices, err := openoptics.RoundRobin(n, uplink)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.DeployTopo(circuits, numSlices); err != nil {
		log.Fatal(err)
	}
	if err := net.DeployRouting(net.VLB(circuits, numSlices, openoptics.RoutingOptions{}),
		openoptics.LookupHop, openoptics.MultipathPacket); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oblivious start: %d-slice round robin\n", numSlices)

	// Persistent hotspot: host 0 -> host 4 elephants, plus background.
	eps := net.Endpoints()
	sink := traffic.NewSink(eps)
	var hot []*hotFlow
	for i := 0; i < 3; i++ {
		hot = append(hot, newHotFlow(net, eps, uint16(2000+i)))
	}
	bg, err := traffic.NewReplay(net.Engine(), eps, traffic.KVStore(), 0.02, 100e9, 3)
	if err != nil {
		log.Fatal(err)
	}
	bg.Start(int64(150 * time.Millisecond))

	// while TM = net.collect("10min"): circuits = sorn(TM); redeploy.
	sliceCap := 100e9 / 8 * 100e-6 // bytes one circuit carries per slice
	for epoch := 0; epoch < 3; epoch++ {
		tm := net.Collect(50 * time.Millisecond) // scaled-down "10 min"
		cts, ns, err := openoptics.SORN(tm, n, uplink, sliceCap)
		if err != nil {
			log.Fatal(err)
		}
		if err := net.DeployTopo(cts, ns); err != nil {
			log.Fatal(err)
		}
		if err := net.DeployRouting(net.VLB(cts, ns, openoptics.RoutingOptions{}),
			openoptics.LookupHop, openoptics.MultipathPacket); err != nil {
			log.Fatal(err)
		}
		direct := directSlices(cts, 0, 4, ns)
		fmt.Printf("epoch %d: pair N0-N4 now holds direct circuits in %d of %d slices\n",
			epoch, direct, ns)
	}
	var moved int64
	for _, h := range hot {
		moved += h.conn.Acked()
	}
	fmt.Printf("hotspot moved %.1f MB; kv mice FCT: %s\n",
		float64(moved)/1e6, sink.FCTSample(traffic.PortReplay).Summary())
}

type hotFlow struct{ conn *transport.Conn }

func directSlices(cts []openoptics.Circuit, a, b openoptics.NodeID, ns int) int {
	seen := make(map[openoptics.Slice]bool)
	for _, c := range cts {
		cc := c.Canon()
		if (cc.A == a && cc.B == b) || (cc.A == b && cc.B == a) {
			seen[c.Slice] = true
		}
	}
	return len(seen)
}

func newHotFlow(net *openoptics.Net, eps []traffic.Endpoint, port uint16) *hotFlow {
	flow := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[4].Host,
		SrcPort: port, DstPort: traffic.PortIperf, Proto: core.ProtoTCP}
	return &hotFlow{eps[0].Stack.OpenTCP(flow, eps[0].Node, eps[4].Node, 1<<30)}
}
