// Quickstart: the Fig. 5 (a) RotorNet program — a traffic-oblivious
// optical DCN in a dozen lines. It builds an 8-ToR network, deploys a
// single-dimensional round-robin optical schedule with VLB routing and
// per-packet spraying, runs a latency probe and a bulk transfer, and
// prints what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"openoptics"
	"openoptics/internal/core"
	"openoptics/internal/traffic"
)

func main() {
	// config = {"node":"rack", "node_num":8, "uplink":1, ...}
	net, err := openoptics.New(openoptics.Config{
		Node:            "rack",
		NodeNum:         8,
		Uplink:          1,
		SliceDurationNs: 100_000, // 100 µs optical slices
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// circuits = round_robin(dimension=1, uplink=config.uplink)
	circuits, numSlices, err := openoptics.RoundRobin(8, 1)
	if err != nil {
		log.Fatal(err)
	}
	// paths = vlb(circuits)
	paths := net.VLB(circuits, numSlices, openoptics.RoutingOptions{})

	// net.deploy_topo(circuits); net.deploy_routing(paths, "hop", "packet")
	if err := net.DeployTopo(circuits, numSlices); err != nil {
		log.Fatal(err)
	}
	if err := net.DeployRouting(paths, openoptics.LookupHop, openoptics.MultipathPacket); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed RotorNet: %d circuits, %d-slice cycle (%v)\n",
		len(circuits), numSlices, net.Schedule().CycleDuration())

	// Drive traffic: a UDP latency probe and one 1 MB TCP transfer.
	eps := net.Endpoints()
	sink := traffic.NewSink(eps)
	probe := traffic.NewUDPProbe(net.Engine(), eps[0], eps[5])
	probe.Start(int64(40 * time.Millisecond))
	flow := core.FlowKey{SrcHost: eps[1].Host, DstHost: eps[6].Host,
		SrcPort: 1000, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	conn := eps[1].Stack.OpenTCP(flow, eps[1].Node, eps[6].Node, 1_000_000)

	net.Run(50 * time.Millisecond)

	fmt.Printf("udp rtt: %s\n", sink.RTT.Summary())
	fmt.Printf("bulk transfer done=%v (%d bytes acked)\n", conn.Done(), conn.Acked())
	fmt.Printf("buffer on N0: %d bytes now, %d bytes sent on uplink 0\n",
		net.BufferUsage(0, openoptics.NoPort), net.BWUsage(0, 0))
}
