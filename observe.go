package openoptics

import (
	"strconv"

	"openoptics/internal/core"
	"openoptics/internal/sim"
	"openoptics/internal/telemetry"
)

// This file wires the telemetry subsystem into a Net: the network-wide
// metrics registry (Prometheus/JSON export) and the sampled in-band packet
// tracer. Neither costs anything until requested — the registry reads
// device counters at export time, and untraced packets pay one nil check
// per decision point.

// Metrics returns the network-wide metrics registry, building it on the
// first call: engine event/profiling counters, every switch/host/transport
// counter block, per-slice drop attribution, buffer and link-utilization
// gauges, and fabric drop counters. Call it after DeployTopo so the
// per-slice counter space covers the deployed cycle length.
func (n *Net) Metrics() *telemetry.Registry {
	if n.reg != nil {
		return n.reg
	}
	reg := telemetry.NewRegistry()
	n.reg = reg

	n.registerEngine(reg)
	for i, sw := range n.switches {
		sw := sw
		node := telemetry.L("node", strconv.Itoa(i))
		telemetry.RegisterCounterStruct(reg, "oo_switch", "Switch counter", &sw.Counters, node)
		reg.GaugeFunc("oo_switch_buffer_bytes", "Bytes currently buffered on the switch.",
			func() float64 { return float64(sw.BufferUsage(core.NoPort)) }, node)
		nports := n.Cfg.Uplink
		if n.elec != nil {
			nports++ // the electrical uplink transmits too
		}
		for p := 0; p < nports; p++ {
			p := core.PortID(p)
			reg.CounterFunc("oo_switch_tx_bytes_total", "Bytes transmitted per switch port.",
				func() float64 { return float64(sw.BWUsage(p)) },
				node, telemetry.L("port", strconv.Itoa(int(p))))
		}
		if n.started {
			sw.AttachMetrics(reg)
		}
		// Not yet started: Start() attaches the per-slice counters once the
		// deployed cycle length is known.
	}
	for i, h := range n.hosts {
		h := h
		st := n.stacks[i]
		host := telemetry.L("host", strconv.Itoa(int(h.Cfg.ID)))
		telemetry.RegisterCounterStruct(reg, "oo_host", "Host counter", &h.Counters, host)
		telemetry.RegisterCounterStruct(reg, "oo_transport", "Transport counter", &st.Counters, host)
		reg.CounterFunc("oo_transport_reorder_events_total", "Out-of-order data arrivals.",
			func() float64 { return float64(st.ReorderEvents) }, host)
	}
	n.registerFabrics(reg)
	n.registerTracer(reg)
	n.registerControl(reg)
	n.registerPool(reg)
	n.registerSched(reg)
	if n.tracer != nil {
		n.tracer.ObserveInto(reg)
	}
	for _, fn := range n.onMetrics {
		fn(reg)
	}
	n.onMetrics = nil
	return reg
}

// OnMetrics runs fn against the network's metrics registry — immediately
// if the registry is already built, otherwise when Metrics() first builds
// it. Subsystems layered on a Net (the demand controller, custom drivers)
// contribute their metrics through it without forcing registry
// construction on runs that never export telemetry.
func (n *Net) OnMetrics(fn func(*telemetry.Registry)) {
	if n.reg != nil {
		fn(n.reg)
		return
	}
	n.onMetrics = append(n.onMetrics, fn)
}

// registerControl exposes the control plane's reprogramming activity: the
// hot-swap counter, current epoch, and the drain-window drop cost.
func (n *Net) registerControl(reg *telemetry.Registry) {
	reg.CounterFunc("oo_reconfig_total", "Mid-run schedule hot-swaps applied (Net.Reprogram).",
		func() float64 { return float64(n.reconfigs) })
	reg.GaugeFunc("oo_epoch", "Current scheduling epoch (hot-swap generation).",
		func() float64 { return float64(n.epoch) })
	reg.GaugeFunc("oo_last_reprogram_ns", "Virtual time of the most recent hot-swap.",
		func() float64 { return float64(n.lastReprogramNs) })
}

// registerTracer exposes trace loss on /metrics. The closures read through
// n.tracer so the counters survive Tracer() being called after Metrics()
// (or called again, replacing the tracer) and report 0 with tracing off.
func (n *Net) registerTracer(reg *telemetry.Registry) {
	for _, c := range []struct {
		name, help string
		read       func(*telemetry.Tracer) uint64
	}{
		{"oo_tracer_started_total", "In-band traces attached to sampled packets.",
			func(t *telemetry.Tracer) uint64 { return t.Started }},
		{"oo_tracer_finished_total", "In-band traces flushed (delivered + dropped).",
			func(t *telemetry.Tracer) uint64 { return t.Finished }},
		{"oo_tracer_sink_errors_total", "Trace JSONL write failures (lost trace records).",
			func(t *telemetry.Tracer) uint64 { return t.SinkErrs }},
	} {
		c := c
		reg.CounterFunc(c.name, c.help, func() float64 {
			if n.tracer == nil {
				return 0
			}
			return float64(c.read(n.tracer))
		})
	}
}

func (n *Net) registerEngine(reg *telemetry.Registry) {
	reg.CounterFunc("oo_engine_events_total", "Executed simulation events.",
		func() float64 { return float64(n.eng.Processed) })
	reg.GaugeFunc("oo_engine_virtual_time_ns", "Engine virtual clock in ns.",
		func() float64 { return float64(n.eng.Now()) })
	reg.DynamicFamily("oo_engine_class_events_total",
		"Executed events by handler class.", telemetry.TypeCounter,
		func(emit func([]telemetry.Label, float64)) {
			for _, cs := range n.eng.ProfileStats() {
				emit([]telemetry.Label{telemetry.L("class", cs.Class.String())}, float64(cs.Count))
			}
		})
	reg.DynamicFamily("oo_engine_class_wall_ns_total",
		"Wall-clock ns spent per handler class (requires EnableProfiling).", telemetry.TypeCounter,
		func(emit func([]telemetry.Label, float64)) {
			for _, cs := range n.eng.ProfileStats() {
				emit([]telemetry.Label{telemetry.L("class", cs.Class.String())}, float64(cs.WallNs))
			}
		})
}

// registerPool exposes the packet slab pool: live occupancy, high-water
// mark, slab growth, and lifetime get/put volume (PR 8 left the pool
// invisible at runtime; a leak shows up here as outstanding drifting up).
func (n *Net) registerPool(reg *telemetry.Registry) {
	reg.CounterFunc("oo_pool_gets_total", "Packet allocations from the slab pool.",
		func() float64 { return float64(n.pool.Stats().Gets) })
	reg.CounterFunc("oo_pool_puts_total", "Packets returned to the slab pool.",
		func() float64 { return float64(n.pool.Stats().Puts) })
	reg.CounterFunc("oo_pool_grows_total", "Slab materializations.",
		func() float64 { return float64(n.pool.Stats().Grows) })
	reg.GaugeFunc("oo_pool_slabs", "Packet slabs materialized.",
		func() float64 { return float64(n.pool.Stats().Slabs) })
	reg.GaugeFunc("oo_pool_outstanding", "Live (allocated, unfreed) packets.",
		func() float64 { return float64(n.pool.Outstanding()) })
	reg.GaugeFunc("oo_pool_high_water", "Most packets live at once.",
		func() float64 { return float64(n.pool.Stats().HighWater) })
	reg.GaugeFunc("oo_pool_free_len", "Recycled slots awaiting reuse.",
		func() float64 { return float64(n.pool.Stats().FreeLen) })
}

// registerSched exposes the calendar queue's pressure counters: where
// pushes land (inline array, spill heap, overflow heap), structural churn
// (migrations, re-sorts, re-anchors), and residency high-water marks.
func (n *Net) registerSched(reg *telemetry.Registry) {
	for _, c := range []struct {
		name, help string
		read       func(sim.SchedPressure) float64
	}{
		{"oo_sched_inline_pushes_total", "Events pushed into a bucket's inline array.",
			func(p sim.SchedPressure) float64 { return float64(p.InlinePushes) }},
		{"oo_sched_spill_pushes_total", "Events pushed into a bucket's spill heap.",
			func(p sim.SchedPressure) float64 { return float64(p.SpillPushes) }},
		{"oo_sched_overflow_pushes_total", "Events pushed into the overflow heap.",
			func(p sim.SchedPressure) float64 { return float64(p.OverflowPushes) }},
		{"oo_sched_migrations_total", "Overflow→wheel event migrations.",
			func(p sim.SchedPressure) float64 { return float64(p.Migrations) }},
		{"oo_sched_resorts_total", "Drain-buffer sorts (batched dispatch).",
			func(p sim.SchedPressure) float64 { return float64(p.Resorts) }},
		{"oo_sched_reanchors_total", "Wheel window re-anchors.",
			func(p sim.SchedPressure) float64 { return float64(p.Reanchors) }},
	} {
		c := c
		reg.CounterFunc(c.name, c.help, func() float64 { return c.read(n.eng.SchedPressure()) })
	}
	reg.GaugeFunc("oo_sched_pending_events", "Events currently queued.",
		func() float64 { return float64(n.eng.Pending()) })
	reg.GaugeFunc("oo_sched_max_wheel_events", "High-water wheel residency.",
		func() float64 { return float64(n.eng.SchedPressure().MaxWheelEvents) })
	reg.GaugeFunc("oo_sched_max_overflow_events", "High-water overflow residency.",
		func() float64 { return float64(n.eng.SchedPressure().MaxOverflowEvents) })
	reg.GaugeFunc("oo_sched_slab_cap", "Event-slab capacity (slots).",
		func() float64 { return float64(n.eng.SchedPressure().SlabCap) })
	reg.GaugeFunc("oo_sched_free_slots", "Free event-slab slots.",
		func() float64 { return float64(n.eng.SchedPressure().FreeSlots) })
	reg.DynamicFamily("oo_sched_bucket_occupancy_total",
		"Pushes by resulting bucket depth (log2 classes).", telemetry.TypeCounter,
		func(emit func([]telemetry.Label, float64)) {
			p := n.eng.SchedPressure()
			for i, c := range p.BucketOccupancy {
				if c == 0 {
					continue
				}
				emit([]telemetry.Label{telemetry.L("depth", sim.OccLabel(i))}, float64(c))
			}
		})
}

func (n *Net) registerFabrics(reg *telemetry.Registry) {
	opt := telemetry.L("fabric", "optical")
	reg.CounterFunc("oo_fabric_drops_total", "Packets dropped inside a fabric.",
		func() float64 { return float64(n.optical.DropsGuard) },
		opt, telemetry.L("reason", string(core.DropGuard)))
	reg.CounterFunc("oo_fabric_drops_total", "Packets dropped inside a fabric.",
		func() float64 { return float64(n.optical.DropsNoCircuit) },
		opt, telemetry.L("reason", string(core.DropNoCircuit)))
	reg.CounterFunc("oo_fabric_drops_total", "Packets dropped inside a fabric.",
		func() float64 { return float64(n.optical.DropsReconfig) },
		opt, telemetry.L("reason", string(core.DropReconfig)))
	reg.CounterFunc("oo_fabric_forwarded_total", "Packets forwarded by a fabric.",
		func() float64 { return float64(n.optical.Forwarded) }, opt)
	for i, l := range n.optical.Links() {
		l := l
		link := telemetry.L("link", strconv.Itoa(i))
		for _, d := range []struct {
			dir   string
			bytes *uint64
		}{{"to_fabric", &l.BytesAB}, {"from_fabric", &l.BytesBA}} {
			d := d
			reg.CounterFunc("oo_link_tx_bytes_total", "Bytes carried per optical-fabric link.",
				func() float64 { return float64(*d.bytes) }, link, telemetry.L("dir", d.dir))
			reg.GaugeFunc("oo_link_utilization", "Fraction of link capacity used since start.",
				func() float64 { return linkUtil(*d.bytes, l.BandwidthBps, n.eng.Now()) },
				link, telemetry.L("dir", d.dir))
		}
	}
	if n.elec == nil {
		return
	}
	el := telemetry.L("fabric", "electrical")
	reg.CounterFunc("oo_fabric_drops_total", "Packets dropped inside a fabric.",
		func() float64 { return float64(n.elec.DropsQueue) },
		el, telemetry.L("reason", string(core.DropElecQueue)))
	reg.CounterFunc("oo_fabric_drops_total", "Packets dropped inside a fabric.",
		func() float64 { return float64(n.elec.DropsNoRoute) },
		el, telemetry.L("reason", string(core.DropElecRoute)))
	reg.CounterFunc("oo_fabric_forwarded_total", "Packets forwarded by a fabric.",
		func() float64 { return float64(n.elec.Forwarded) }, el)
	for i := range n.switches {
		node := core.NodeID(i)
		reg.GaugeFunc("oo_elec_queue_max_bytes", "Electrical-fabric output-queue high-water mark.",
			func() float64 { return float64(n.elec.MaxQueueBytes(node)) },
			telemetry.L("node", strconv.Itoa(i)))
	}
}

func linkUtil(bytes uint64, bps int64, nowNs int64) float64 {
	if nowNs <= 0 || bps <= 0 {
		return 0
	}
	return float64(bytes) * 8 * 1e9 / (float64(bps) * float64(nowNs))
}

// Tracer attaches a sampled in-band packet tracer to every device (switch,
// host, both fabrics) and returns it. sampleRate is the fraction of flows
// traced (deterministic per-flow hash sampling; 1 traces everything).
// Direct the JSONL output with SetSink, or consume traces programmatically
// via OnFinish. Calling Tracer again replaces the previous tracer.
func (n *Net) Tracer(sampleRate float64) *telemetry.Tracer {
	tr := telemetry.NewTracer(sampleRate, nil)
	n.tracer = tr
	if n.reg != nil {
		tr.ObserveInto(n.reg)
	}
	for _, sw := range n.switches {
		sw.Tracer = tr
	}
	for _, h := range n.hosts {
		h.Tracer = tr
	}
	n.optical.Tracer = tr
	if n.elec != nil {
		n.elec.Tracer = tr
	}
	return tr
}
