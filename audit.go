package openoptics

import (
	"fmt"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/diverge"
	"openoptics/internal/provenance"
	"openoptics/internal/sim"
)

// This file is the determinism auditor's Net-level half: the wiring that
// attaches the engine's event digest (internal/sim/digest.go), takes
// periodic state checkpoints, and evaluates runtime invariant probes —
// conservation laws that must hold in any correct run regardless of seed
// or topology. Violations fire the attached flight recorder, so the slices
// leading up to a broken invariant are preserved for replay. Cost
// discipline: a Net that never calls AttachDigest pays one nil check per
// dispatch (the engine's digest branch) and nothing else.

// DigestOptions configures the determinism auditor.
type DigestOptions struct {
	// WindowEvents is the digest window granularity in dispatches
	// (rounded up to a power of two; 0 = 64k). Smaller windows localize
	// divergence tighter at the price of a longer journal.
	WindowEvents uint64
	// CheckpointEveryNs is the virtual-time cadence of state checkpoints
	// and invariant-probe sweeps. 0 defaults to 1ms; negative disables
	// checkpoints entirely (the event digest still runs). Checkpoints are
	// engine events, so two runs are stream-comparable only when their
	// cadences match.
	CheckpointEveryNs int64
}

// Probe is one registered runtime invariant: Check returns "" while the
// invariant holds, or a human-readable violation detail.
type Probe struct {
	Name  string
	Check func() string
}

// Auditor is a Net's attached determinism auditor: the engine event
// digest plus the checkpoint/probe machinery.
type Auditor struct {
	net       *Net
	dig       *sim.EventDigest
	cadenceNs int64 // resolved; <=0 means checkpoints disabled

	probes []Probe

	checkpoints    []diverge.CheckpointRec
	violations     []diverge.ViolationRec
	violationCount uint64
	lastCheckT     int64

	// linkBytes holds the previous checkpoint's per-link cumulative byte
	// counters (AB, BA interleaved) for the byte-conservation probe.
	linkBytes []uint64
}

// maxRecordedViolations caps the violation records kept (and written to
// the journal); the count keeps incrementing past it.
const maxRecordedViolations = 64

// AttachDigest attaches the determinism auditor: every dispatch folds
// into the windowed event digest, and (unless disabled) state checkpoints
// with invariant probes run at the configured virtual cadence. Attach
// before Run — the digest only covers dispatches after attachment, and
// the checkpoint event stream is part of the run's identity. Idempotent:
// a second call returns the existing auditor unchanged.
func (n *Net) AttachDigest(opts DigestOptions) *Auditor {
	if n.audit != nil {
		return n.audit
	}
	a := &Auditor{
		net:       n,
		dig:       sim.NewEventDigest(opts.WindowEvents),
		cadenceNs: opts.CheckpointEveryNs,
	}
	if a.cadenceNs == 0 {
		a.cadenceNs = int64(time.Millisecond)
	}
	n.eng.AttachDigest(a.dig)
	n.audit = a
	a.RegisterProbe("packet-conservation", a.checkPacketConservation)
	a.RegisterProbe("vtime-monotonic", a.checkTimeMonotonic)
	a.RegisterProbe("link-byte-conservation", a.checkLinkBytes)
	if a.cadenceNs > 0 {
		n.eng.EveryClass(a.cadenceNs, a.cadenceNs, sim.ClassTelemetry, func() bool {
			a.Checkpoint()
			return true
		})
	}
	return a
}

// Auditor returns the attached determinism auditor, or nil.
func (n *Net) Auditor() *Auditor { return n.audit }

// Digest exposes the underlying engine event digest.
func (a *Auditor) Digest() *sim.EventDigest { return a.dig }

// CheckpointEveryNs returns the resolved checkpoint cadence (0 when
// checkpoints are disabled).
func (a *Auditor) CheckpointEveryNs() int64 {
	if a.cadenceNs <= 0 {
		return 0
	}
	return a.cadenceNs
}

// RegisterProbe adds a runtime invariant to the per-checkpoint sweep.
func (a *Auditor) RegisterProbe(name string, check func() string) {
	a.probes = append(a.probes, Probe{Name: name, Check: check})
}

// ChainHex returns the running hash-chain (including the open partial
// window) in the journal's fixed-width hex form.
func (a *Auditor) ChainHex() string { return diverge.Hex(a.dig.Chain()) }

// ViolationCount returns the cumulative invariant violations observed.
func (a *Auditor) ViolationCount() uint64 { return a.violationCount }

// Checkpoints returns the recorded state checkpoints.
func (a *Auditor) Checkpoints() []diverge.CheckpointRec { return a.checkpoints }

// Violations returns the recorded violations (capped; see ViolationCount).
func (a *Auditor) Violations() []diverge.ViolationRec { return a.violations }

// Checkpoint sweeps the invariant probes and records a state checkpoint
// now. Runs automatically at the configured cadence; callers may force
// extra checkpoints (e.g. a final one after the run).
func (a *Auditor) Checkpoint() {
	now := a.net.eng.Now()
	for _, p := range a.probes {
		if d := p.Check(); d != "" {
			a.violate(p.Name, d, now)
		}
	}
	ps := a.net.pool.Stats()
	a.checkpoints = append(a.checkpoints, diverge.CheckpointRec{
		TNs:             now,
		Events:          a.net.eng.Processed,
		StateHash:       diverge.Hex(a.stateHash(now)),
		PoolGets:        ps.Gets,
		PoolPuts:        ps.Puts,
		PoolOutstanding: int64(ps.Outstanding),
	})
	a.lastCheckT = now
}

// violate records one invariant violation and fires the flight recorder
// (when one is attached) so the slices leading up to it are preserved.
func (a *Auditor) violate(probe, detail string, now int64) {
	a.violationCount++
	if len(a.violations) < maxRecordedViolations {
		a.violations = append(a.violations, diverge.ViolationRec{
			TNs: now, Events: a.net.eng.Processed, Probe: probe, Detail: detail,
		})
	}
	if a.net.flightDump != nil {
		a.net.flightDump(fmt.Sprintf("invariant %s violated at t=%dns: %s", probe, now, detail))
	}
}

// stateHash folds the network's observable state into one 64-bit value:
// engine clock and event count, every switch's counters and buffered
// bytes, fabric counters, per-link byte totals, and the packet pool's
// conservation terms. Iteration is over ordered slices only (switches by
// node id, links by fabric port) — never maps — so the hash is a pure
// function of simulation state.
func (a *Auditor) stateHash(now int64) uint64 {
	n := a.net
	h := core.Mix64(uint64(now) ^ core.Mix64(n.eng.Processed))
	mix := func(v uint64) { h = core.Mix64(h ^ v) }
	for _, sw := range n.switches {
		c := &sw.Counters
		mix(c.RxPkts ^ c.TxPkts<<1)
		mix(c.Delivered ^ c.EnqueuedBytes<<1)
		mix(c.DropsNoRoute ^ c.DropsBuffer<<8 ^ c.DropsWrap<<16 ^ c.DropsCongest<<24 ^ c.DropsTTL<<32)
		mix(c.Trims ^ c.Defers<<8 ^ c.PushBacksSent<<16 ^ c.PushBacksRx<<24)
		mix(c.Offloads ^ c.OffloadsBack<<8 ^ c.SliceMisses<<16 ^ c.Fallbacks<<24)
		mix(uint64(sw.BufferUsage(core.NoPort)))
	}
	of := n.optical
	mix(of.Forwarded ^ of.DropsGuard<<8 ^ of.DropsNoCircuit<<16 ^ of.DropsReconfig<<24)
	for _, l := range of.Links() {
		if l == nil {
			continue
		}
		mix(l.BytesAB ^ core.Mix64(l.BytesBA))
	}
	if n.elec != nil {
		mix(n.elec.DropsQueue ^ n.elec.DropsNoRoute<<16)
	}
	ps := n.pool.Stats()
	mix(ps.Gets ^ core.Mix64(ps.Puts) ^ uint64(int64(ps.Outstanding)))
	return h
}

// checkPacketConservation is the pool conservation law: every packet ever
// allocated is either back in the pool or still outstanding (in flight,
// queued, or parked) — Gets == Puts + Outstanding. A miscounted free or a
// double-free breaks the identity immediately.
func (a *Auditor) checkPacketConservation() string {
	ps := a.net.pool.Stats()
	if ps.Gets != ps.Puts+uint64(ps.Outstanding) {
		return fmt.Sprintf("pool gets=%d != puts=%d + outstanding=%d", ps.Gets, ps.Puts, ps.Outstanding)
	}
	return ""
}

// checkTimeMonotonic asserts virtual time never runs backwards between
// checkpoints.
func (a *Auditor) checkTimeMonotonic() string {
	now := a.net.eng.Now()
	if now < a.lastCheckT {
		return fmt.Sprintf("virtual time moved backwards: %dns after checkpoint at %dns", now, a.lastCheckT)
	}
	return ""
}

// checkLinkBytes asserts per-link byte conservation: cumulative byte
// counters are monotone non-decreasing in both directions on every
// optical-fabric link.
func (a *Auditor) checkLinkBytes() string {
	links := a.net.optical.Links()
	if cap(a.linkBytes) < 2*len(links) {
		a.linkBytes = make([]uint64, 2*len(links))
	}
	prev := a.linkBytes[:2*len(links)]
	var viol string
	for i, l := range links {
		if l == nil {
			continue
		}
		if viol == "" && (l.BytesAB < prev[2*i] || l.BytesBA < prev[2*i+1]) {
			viol = fmt.Sprintf("link %d byte counters decreased (ab %d->%d, ba %d->%d)",
				i, prev[2*i], l.BytesAB, prev[2*i+1], l.BytesBA)
		}
		prev[2*i], prev[2*i+1] = l.BytesAB, l.BytesBA
	}
	return viol
}

// AuditStatus is the auditor's live view, published on /snapshot and
// /runinfo and rendered by `ooctl watch`.
type AuditStatus struct {
	WindowEvents      uint64 `json:"window_events"`
	CheckpointEveryNs int64  `json:"checkpoint_every_ns,omitempty"`
	Events            uint64 `json:"events"`
	Windows           int    `json:"windows"`
	Chain             string `json:"chain"`
	Checkpoints       int    `json:"checkpoints"`
	Violations        uint64 `json:"violations"`
}

// Status captures the auditor's current digest/checkpoint/violation state.
func (a *Auditor) Status() AuditStatus {
	return AuditStatus{
		WindowEvents:      a.dig.WindowEvents(),
		CheckpointEveryNs: a.CheckpointEveryNs(),
		Events:            a.dig.Events(),
		Windows:           len(a.dig.Windows()),
		Chain:             a.ChainHex(),
		Checkpoints:       len(a.checkpoints),
		Violations:        a.violationCount,
	}
}

// BuildJournal assembles the run's digest journal for writing. Call after
// the run (or after an interrupt's graceful drain — the engine's
// interrupted flag is recorded so comparison tooling knows the journal is
// truncated).
func (a *Auditor) BuildJournal(m *provenance.Manifest, rspec *diverge.ReplaySpec) *diverge.Journal {
	j := &diverge.Journal{
		Header: diverge.Header{
			SchemaVersion:     diverge.SchemaVersion,
			Manifest:          m,
			WindowEvents:      a.dig.WindowEvents(),
			CheckpointEveryNs: a.CheckpointEveryNs(),
			Replay:            rspec,
		},
		Checkpoints: a.checkpoints,
		Violations:  a.violations,
	}
	for _, w := range a.dig.Windows() {
		j.Windows = append(j.Windows, diverge.WindowRec{
			Index:     w.Index,
			EndEvents: w.EndEvents,
			EndTNs:    w.EndTNs,
			Hash:      diverge.Hex(w.Hash),
			Chain:     diverge.Hex(w.Chain),
		})
	}
	j.Final = diverge.FinalRec{
		Events:      a.dig.Events(),
		LastTNs:     a.dig.LastTNs(),
		Chain:       a.ChainHex(),
		Windows:     len(j.Windows),
		Checkpoints: len(a.checkpoints),
		Violations:  a.violationCount,
		Interrupted: a.net.eng.Interrupted(),
	}
	if ha, hb, ok := a.dig.PerturbHint(); ok {
		j.Final.PerturbHint = fmt.Sprintf("%d:%d", ha, hb)
	}
	return j
}
