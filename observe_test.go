package openoptics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"regexp"
	"strings"
	"testing"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/traffic"
)

// Tests for the telemetry subsystem at the network level: Monitor cadence,
// in-band packet tracing, and the Prometheus exporter.

func TestMonitorCadence(t *testing.T) {
	n := rotorNet4(t, nil)
	var times []int64
	n.Monitor(2*time.Millisecond, func(tl Telemetry) bool {
		times = append(times, tl.Time)
		return true
	})
	n.Run(21 * time.Millisecond)
	if len(times) != 10 {
		t.Fatalf("got %d snapshots over 21 ms at 2 ms cadence, want 10", len(times))
	}
	for i, ts := range times {
		want := int64(i+1) * 2_000_000
		if ts != want {
			t.Fatalf("snapshot %d at virtual %d ns, want %d", i, ts, want)
		}
	}
}

func TestMonitorStopsWhenFnReturnsFalse(t *testing.T) {
	n := rotorNet4(t, nil)
	calls := 0
	n.Monitor(time.Millisecond, func(Telemetry) bool {
		calls++
		return calls < 3
	})
	n.Run(50 * time.Millisecond)
	if calls != 3 {
		t.Fatalf("monitor fired %d times after returning false on call 3", calls)
	}
}

func TestMonitorCountsElectricalPort(t *testing.T) {
	// A pure electrical network: all transmitted bytes leave through the
	// electrical uplink, so TxBytes is non-zero only if Monitor includes
	// that port in its per-switch sum.
	cfg := Config{NodeNum: 4, Uplink: 1, ElectricalGbps: 100, Seed: 7}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := n.ElectricalPaths()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployRouting(paths, LookupHop, MultipathNone); err != nil {
		t.Fatal(err)
	}
	var last Telemetry
	n.Monitor(5*time.Millisecond, func(tl Telemetry) bool {
		last = tl
		return true
	})
	eps := n.Endpoints()
	flow := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[2].Host,
		SrcPort: 9, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	eps[0].Stack.OpenTCP(flow, eps[0].Node, eps[2].Node, 500_000)
	n.Run(40 * time.Millisecond)
	var tx uint64
	for _, v := range last.TxBytes {
		tx += v
	}
	if tx == 0 {
		t.Fatal("TxBytes = 0 on an electrical-only network: Monitor misses the electrical port")
	}
}

// TestTraceReconstructsFlowPath is the tracing acceptance test: with a
// fixed seed and sample rate 1, the JSONL output must reconstruct each
// sampled packet's exact hop sequence and final disposition — and two runs
// with the same seed must produce identical traces.
func TestTraceReconstructsFlowPath(t *testing.T) {
	run := func() string {
		n := rotorNet4(t, nil)
		var buf bytes.Buffer
		n.Tracer(1).SetSink(&buf)
		eps := n.Endpoints()
		probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[3])
		probe.IntervalNs = 100_000
		probe.Start(int64(5 * time.Millisecond))
		n.Run(8 * time.Millisecond)
		return buf.String()
	}
	out := run()
	if out != run() {
		t.Fatal("same seed produced different trace output")
	}

	var delivered, forward int
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var tr PktTrace
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if tr.Disposition != core.DispDelivered {
			continue // drops are legitimate (e.g. guardband); checked below
		}
		delivered++
		if len(tr.Hops) == 0 {
			t.Fatalf("delivered trace with no hops: %+v", tr)
		}
		if tr.Hops[0].Node != tr.SrcNode {
			t.Fatalf("first hop at node %d, want source ToR %d", tr.Hops[0].Node, tr.SrcNode)
		}
		if tr.Hops[len(tr.Hops)-1].Node != tr.DstNode {
			t.Fatalf("last hop at node %d, want destination ToR %d", tr.Hops[len(tr.Hops)-1].Node, tr.DstNode)
		}
		if tr.EndNode != tr.DstNode {
			t.Fatalf("delivered at node %d, want %d", tr.EndNode, tr.DstNode)
		}
		prev := tr.StartNs
		for _, h := range tr.Hops {
			if h.TimeNs < prev {
				t.Fatalf("hop times not monotone: %+v", tr.Hops)
			}
			prev = h.TimeNs
			if h.ArrSlice != core.WildcardSlice && (h.ArrSlice < 0 || int(h.ArrSlice) >= 3) {
				t.Fatalf("hop arr slice %d outside deployed cycle", h.ArrSlice)
			}
		}
		if tr.EndNs < prev {
			t.Fatalf("end %d before last hop %d", tr.EndNs, prev)
		}
		// VLB on this 4-node rotor takes at most the source NIC plus
		// source + intermediate + destination ToR decisions.
		if len(tr.Hops) > 4 {
			t.Fatalf("delivered trace with %d hops on a 4-node VLB net", len(tr.Hops))
		}
		if tr.SrcNode == 0 && tr.DstNode == 3 {
			forward++
		}
	}
	if delivered == 0 {
		t.Fatal("no delivered traces recorded")
	}
	if forward == 0 {
		t.Fatal("no traces for the forward probe flow 0->3")
	}
}

func TestTraceHistogramsFeedRegistry(t *testing.T) {
	n := rotorNet4(t, nil)
	reg := n.Metrics()
	tr := n.Tracer(1) // after Metrics: ObserveInto wires the trace histograms
	eps := n.Endpoints()
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[3])
	probe.Start(int64(5 * time.Millisecond))
	n.Run(8 * time.Millisecond)
	tr.FinalizeFlows() // flush per-flow FCT before export

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"oo_trace_latency_ns_bucket", "oo_trace_hops_count",
		`oo_trace_component_ns_bucket{component="slice_wait"`,
		`oo_trace_component_ns_count{component="queueing"`,
		`oo_trace_component_ns_count{component="serialization"`,
		`oo_trace_component_ns_count{component="propagation"`,
		"oo_trace_fct_ns_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("%s missing from export", want)
		}
	}
	if strings.Contains(out, "oo_trace_latency_ns_count 0\n") {
		t.Fatal("trace latency histogram recorded nothing")
	}
	if strings.Contains(out, "oo_trace_fct_ns_count 0\n") {
		t.Fatal("FCT histogram empty after FinalizeFlows")
	}
	// Attribution must cover every delivered packet: each component
	// histogram's count equals the latency histogram's.
	latMatch := regexp.MustCompile(`(?m)^oo_trace_latency_ns_count (\S+)$`).FindStringSubmatch(out)
	if latMatch == nil {
		t.Fatal("no oo_trace_latency_ns_count sample")
	}
	for _, c := range []string{"slice_wait", "queueing", "serialization", "propagation"} {
		re := regexp.MustCompile(`(?m)^oo_trace_component_ns_count\{component="` + c + `"\} (\S+)$`)
		m := re.FindStringSubmatch(out)
		if m == nil || m[1] != latMatch[1] {
			t.Fatalf("component %s count %v, latency histogram count %s", c, m, latMatch[1])
		}
	}
	// FCT: one observation per sampled flow (probe + echo directions).
	fctMatch := regexp.MustCompile(`(?m)^oo_trace_fct_ns_count (\S+)$`).FindStringSubmatch(out)
	if fctMatch == nil || fctMatch[1] != "2" {
		t.Fatalf("FCT observations = %v, want 2; stats %+v", fctMatch, tr.Stats())
	}
}

// promSample matches a valid Prometheus text-format sample line (a local
// copy of the validator in internal/telemetry's tests).
var promSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestPrometheusExportParses(t *testing.T) {
	n := rotorNet4(t, nil)
	reg := n.Metrics()
	eps := n.Endpoints()
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[2])
	probe.Start(int64(5 * time.Millisecond))
	n.Run(8 * time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples := 0
	perSliceDrops := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("invalid Prometheus line: %q", line)
		}
		samples++
		if strings.HasPrefix(line, "oo_switch_drops_total{") {
			if !strings.Contains(line, `slice="`) || !strings.Contains(line, `reason="`) {
				t.Fatalf("drop counter missing slice/reason labels: %q", line)
			}
			perSliceDrops[line[:strings.LastIndexByte(line, ' ')]] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if samples < 50 {
		t.Fatalf("only %d samples exported", samples)
	}
	// 4 nodes x 5 switch drop reasons x 3 slices.
	if len(perSliceDrops) != 60 {
		t.Fatalf("per-slice drop series = %d, want 60", len(perSliceDrops))
	}
	for _, name := range []string{
		"oo_engine_events_total", "oo_switch_rx_pkts_total",
		"oo_host_tx_pkts_total", "oo_transport_retransmissions_total",
		"oo_fabric_forwarded_total", "oo_link_tx_bytes_total",
		"oo_switch_tx_bytes_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metric family %s missing from export", name)
		}
	}
}
