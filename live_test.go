package openoptics

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/obsv"
	"openoptics/internal/traffic"
)

func TestObserveHookWiring(t *testing.T) {
	saved := Observe
	defer func() { Observe = saved }()

	var seen []*Net
	Observe = func(n *Net) { seen = append(seen, n) }
	n := rotorNet4(t, nil)
	if len(seen) != 1 || seen[0] != n {
		t.Fatalf("Observe saw %d nets, want exactly the one constructed", len(seen))
	}
}

// probeTraffic starts bidirectional UDP probes between every node pair so
// queues hold bytes throughout the run.
func probeTraffic(t *testing.T, n *Net, durNs int64) {
	t.Helper()
	eps := n.Endpoints()
	traffic.NewSink(eps)
	for i := range eps {
		for j := range eps {
			if i == j {
				continue
			}
			p := traffic.NewUDPProbe(n.Engine(), eps[i], eps[j])
			p.IntervalNs = 20_000
			p.Start(durNs)
		}
	}
}

func TestSnapshotMatchesBufferUsage(t *testing.T) {
	n := rotorNet4(t, nil)
	probeTraffic(t, n, int64(18*time.Millisecond))

	captures := 0
	for _, at := range []int64{int64(5 * time.Millisecond), 10_050_000, 15_123_456} {
		at := at
		n.Engine().At(at, func() {
			snap := n.Snapshot()
			if snap.TimeNs != at {
				t.Fatalf("snapshot TimeNs = %d, want capture instant %d", snap.TimeNs, at)
			}
			// Per-switch buffered bytes must match the buffer_usage() API
			// exactly at the capture instant.
			var total int64
			for _, sw := range snap.Switches {
				want := n.BufferUsage(sw.Node, core.NoPort)
				if sw.BufferedBytes != want {
					t.Fatalf("t=%d N%d snapshot buffered=%d, BufferUsage=%d",
						at, sw.Node, sw.BufferedBytes, want)
				}
				var portSum int64
				for _, p := range sw.Ports {
					portSum += p.BufferedBytes
					var qSum int64
					for _, q := range p.Queues {
						qSum += q.Bytes
					}
					if p.Kind == "uplink" && qSum != p.BufferedBytes {
						t.Fatalf("t=%d N%d p%d queue sum %d != port buffered %d",
							at, sw.Node, p.Port, qSum, p.BufferedBytes)
					}
				}
				if portSum != sw.BufferedBytes {
					t.Fatalf("t=%d N%d port sum %d != switch buffered %d",
						at, sw.Node, portSum, sw.BufferedBytes)
				}
				total += sw.BufferedBytes
			}
			// Totals must agree with the Counters() aggregate.
			if snap.Totals != n.Counters() {
				t.Fatalf("t=%d snapshot totals %+v != Counters() %+v", at, snap.Totals, n.Counters())
			}
			// Links mirror the bw_usage() view.
			for _, l := range snap.Links {
				if want := n.BWUsage(l.Node, l.Port); l.TxBytes != want {
					t.Fatalf("t=%d link N%d/p%d tx=%d, BWUsage=%d", at, l.Node, l.Port, l.TxBytes, want)
				}
				if l.Utilization < 0 || l.Utilization > 1 {
					t.Fatalf("utilization %f out of range", l.Utilization)
				}
			}
			if len(snap.Links) != 4 { // 4 nodes × 1 uplink
				t.Fatalf("snapshot has %d links, want 4", len(snap.Links))
			}
			captures++
		})
	}
	n.Run(20 * time.Millisecond)
	if captures != 3 {
		t.Fatalf("ran %d captures, want 3", captures)
	}
	// At least one capture should have seen buffered bytes somewhere;
	// otherwise the equality checks above were vacuous. Check final
	// counters as a proxy for real traffic.
	if n.Counters().TxPkts == 0 {
		t.Fatal("no traffic flowed; snapshot checks were vacuous")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	n := rotorNet4(t, nil)
	probeTraffic(t, n, int64(4*time.Millisecond))
	n.Run(5 * time.Millisecond)

	snap := n.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back NetSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.TimeNs != snap.TimeNs || len(back.Switches) != len(snap.Switches) ||
		back.Totals != snap.Totals {
		t.Fatalf("round trip mismatch: %+v vs %+v", back.Totals, snap.Totals)
	}
	for i := range snap.Switches {
		if back.Switches[i].BufferedBytes != snap.Switches[i].BufferedBytes {
			t.Fatalf("switch %d buffered bytes lost in round trip", i)
		}
	}
}

func TestAttachLivePublishes(t *testing.T) {
	srv := obsv.NewServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := rotorNet4(t, nil)
	n.Metrics() // arm the registry
	probeTraffic(t, n, int64(8*time.Millisecond))
	n.AttachLive(srv, time.Millisecond)
	n.Run(10 * time.Millisecond)
	n.PublishLive(srv)

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, "oo_engine_events_total") {
		t.Fatalf("/metrics missing engine counters:\n%.400s", metrics)
	}
	if !strings.Contains(metrics, "# TYPE") {
		t.Fatal("/metrics missing exposition TYPE lines")
	}

	var snap NetSnapshot
	if err := json.Unmarshal([]byte(get("/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot not valid NetSnapshot JSON: %v", err)
	}
	if snap.TimeNs != int64(10*time.Millisecond) {
		t.Fatalf("/snapshot published at t=%d, want final state at 10ms", snap.TimeNs)
	}
	if snap.Totals.TxPkts == 0 {
		t.Fatal("/snapshot shows no traffic after a loaded run")
	}
}

// hotspotNet builds a rotorNet4 with congestion detection armed and a tiny
// per-queue threshold, then aims heavy UDP bursts at one node so the
// detection service fires continuously — the Table-4-style hotspot.
func hotspotNet(t *testing.T) *Net {
	t.Helper()
	n := rotorNet4(t, func(c *Config) {
		c.CongestionDetection = true
		c.CongestionThresholdBytes = 3_000
		c.BufferBytes = 256_000
	})
	eps := n.Endpoints()
	traffic.NewSink(eps)
	n.Engine().Every(0, 20_000, func() bool {
		if n.Engine().Now() > int64(18*time.Millisecond) {
			return false
		}
		for i := 0; i < 3; i++ {
			flow := core.FlowKey{SrcHost: eps[i].Host, DstHost: eps[3].Host,
				SrcPort: uint16(5000 + i), DstPort: 9, Proto: core.ProtoUDP}
			for k := 0; k < 4; k++ {
				eps[i].Stack.SendUDP(flow, eps[i].Node, eps[3].Node, 1500, false)
			}
		}
		return true
	})
	return n
}

func TestFlightRecorderCongestionDump(t *testing.T) {
	n := hotspotNet(t)

	var dump bytes.Buffer
	rec := obsv.NewFlightRecorder(8, obsv.TriggerConfig{
		CongestHits: 5, CongestSlices: 2,
	}, &dump)
	n.AttachFlightRecorder(rec, true)

	// Wrap the installed sampling hook to record ground-truth buffer usage
	// at every sampling instant, keyed by virtual time. The wrapper runs in
	// the same event as the sample capture, so the two views are
	// simultaneous by construction.
	sw := n.Switches()[len(n.Switches())-1]
	inner := sw.OnRotate
	truth := map[int64][]int64{}
	sw.OnRotate = func(ended core.Slice) {
		now := n.Engine().Now()
		usage := make([]int64, len(n.Switches()))
		for i := range n.Switches() {
			usage[i] = n.BufferUsage(core.NodeID(i), core.NoPort)
		}
		truth[now] = usage
		inner(ended)
	}

	n.Run(20 * time.Millisecond)

	if rec.Dumps == 0 {
		t.Fatalf("hotspot never tripped a trigger; counters %+v", n.Counters())
	}
	if dump.Len() == 0 {
		t.Fatal("trigger fired but dump is empty")
	}

	// Replay the first dump: the header, then samples oldest-first whose
	// embedded snapshots must reproduce the ground-truth buffer totals.
	dec := json.NewDecoder(&dump)
	var hdr obsv.DumpHeader
	if err := dec.Decode(&hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Kind != "trigger" || !strings.Contains(hdr.Reason, "sustained congestion") {
		t.Fatalf("header = %+v, want a sustained-congestion trigger", hdr)
	}
	type dumpSample struct {
		TimeNs int64        `json:"time_ns"`
		Slice  int64        `json:"slice"`
		Data   *NetSnapshot `json:"data"`
	}
	replayed, prevSlice := 0, int64(-1)
	for i := 0; i < hdr.Samples; i++ {
		var s dumpSample
		if err := dec.Decode(&s); err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if prevSlice >= 0 && s.Slice != (prevSlice+1)%int64(n.Schedule().NumSlices) {
			t.Fatalf("dump slices not consecutive: %d after %d", s.Slice, prevSlice)
		}
		prevSlice = s.Slice
		if s.Data == nil {
			t.Fatalf("sample %d has no embedded snapshot", i)
		}
		want, ok := truth[s.TimeNs]
		if !ok {
			t.Fatalf("sample at t=%d has no ground-truth record", s.TimeNs)
		}
		for j, swSnap := range s.Data.Switches {
			if swSnap.BufferedBytes != want[j] {
				t.Fatalf("replay t=%d N%d buffered=%d, live BufferUsage was %d",
					s.TimeNs, j, swSnap.BufferedBytes, want[j])
			}
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("dump contained no samples")
	}
	tot := n.Counters()
	if tot.CongestionHits() == 0 {
		t.Fatal("congestion counters empty despite trigger")
	}
}

func TestAttachLiveZeroCostWhenAbsent(t *testing.T) {
	// Without AttachLive / AttachFlightRecorder the network must schedule
	// no telemetry events and install no rotation hooks.
	n := rotorNet4(t, nil)
	for i, sw := range n.Switches() {
		if sw.OnRotate != nil {
			t.Fatalf("switch %d has a rotation hook without a flight recorder", i)
		}
	}
	n.Run(time.Millisecond)
	if n.reg != nil {
		t.Fatal("metrics registry materialized without opt-in")
	}
}

// Ensure the engine drains fast on interrupt even with live publishing
// armed — oosim's Ctrl-C path.
func TestInterruptWithLiveAttached(t *testing.T) {
	srv := obsv.NewServer()
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	n := rotorNet4(t, nil)
	n.Metrics()
	probeTraffic(t, n, int64(50*time.Millisecond))
	n.AttachLive(srv, time.Millisecond)
	n.Engine().At(int64(2*time.Millisecond), func() { n.Engine().Interrupt() })
	n.Run(60 * time.Millisecond)
	if !n.Engine().Interrupted() {
		t.Fatal("interrupt flag lost")
	}
	if now := n.Engine().Now(); now > int64(5*time.Millisecond) {
		t.Fatalf("engine ran to t=%d after interrupt at 2ms", now)
	}
}
