package openoptics

import (
	"fmt"

	"openoptics/internal/core"
)

// This file implements the mid-run schedule hot-swap the demand-aware
// control plane (internal/demand) builds on: Net.Reprogram re-enters the
// existing controller compile path — DeployTopo then DeployRouting — at a
// simulated epoch boundary, atomically in virtual time (both deployments
// land at the same instant, so no packet observes the intermediate state),
// with an explicit reconfiguration-cost model: fabric ports whose circuits
// changed go dark for a drain window during which they carry no traffic.

// ReprogramPlan is one epoch's full program: the circuit schedule plus the
// routing compiled against it. NumSlices zero keeps the deployed cycle
// length (the cycle length is fixed once the network has started).
type ReprogramPlan struct {
	Circuits  []core.Circuit
	NumSlices int
	Paths     []core.Path
	Lookup    core.LookupMode
	Multipath core.MultipathMode
}

// ReconfigCost models what a hot-swap costs the data plane.
type ReconfigCost struct {
	// DrainNs is the dark window: fabric ports whose circuits changed drop
	// packets (DropReconfig) for this long after the swap, modeling the
	// drain/guard slices during which affected circuits are retuned.
	// Unaffected ports forward normally throughout. Zero applies the swap
	// for free (idealized reconfiguration).
	DrainNs int64
}

// Reprogram hot-swaps the deployed schedule and routing in one virtual
// instant. On routing failure the previous program is restored (the same
// rollback discipline as DeployRoutingLayer), so the network always runs a
// complete, validated program. A swap that changes no circuit still
// replaces the routing and counts as a reconfiguration, but darkens no
// ports.
func (n *Net) Reprogram(plan ReprogramPlan, cost ReconfigCost) error {
	if plan.NumSlices <= 0 {
		plan.NumSlices = n.sched.NumSlices
	}
	oldCircuits := n.sched.Circuits
	oldSlices := n.sched.NumSlices
	changed := diffCircuits(oldCircuits, plan.Circuits)
	if err := n.DeployTopo(plan.Circuits, plan.NumSlices); err != nil {
		return fmt.Errorf("openoptics: reprogram topo: %w", err)
	}
	if err := n.DeployRouting(plan.Paths, plan.Lookup, plan.Multipath); err != nil {
		// DeployRoutingLayer already restored the old layer contents; put
		// the old schedule back and recompile so tables and topology agree.
		rerr := n.DeployTopo(oldCircuits, oldSlices)
		if rerr == nil {
			rerr = n.rebuildTables()
		}
		if rerr != nil {
			return fmt.Errorf("openoptics: reprogram failed (%v) and rollback failed: %w", err, rerr)
		}
		return fmt.Errorf("openoptics: reprogram routing: %w", err)
	}
	if cost.DrainNs > 0 && n.started && len(changed) > 0 {
		ports := make([]int, 0, 2*len(changed))
		for _, c := range changed {
			if fp, ok := n.optical.PortOf(c.A, c.PortA); ok {
				ports = append(ports, fp)
			}
			if fp, ok := n.optical.PortOf(c.B, c.PortB); ok {
				ports = append(ports, fp)
			}
		}
		n.optical.SetDark(ports, n.eng.Now()+cost.DrainNs)
	}
	n.epoch++
	n.reconfigs++
	n.lastReprogramNs = n.eng.Now()
	return nil
}

// Epoch returns the current scheduling epoch: the number of hot-swaps
// applied, 0 until the first Reprogram.
func (n *Net) Epoch() int { return n.epoch }

// Reconfigs returns the cumulative hot-swap count (the oo_reconfig_total
// metric's source).
func (n *Net) Reconfigs() uint64 { return n.reconfigs }

// LastReprogramNs returns the virtual time of the most recent hot-swap
// (0 if none happened yet).
func (n *Net) LastReprogramNs() int64 { return n.lastReprogramNs }

// diffCircuits returns the circuits present in exactly one of the two
// programs (canonical, endpoint-ordered form): those torn down plus those
// newly set up — the set the reconfiguration cost applies to.
func diffCircuits(old, new []core.Circuit) []core.Circuit {
	count := make(map[core.Circuit]int, len(old)+len(new))
	for _, c := range old {
		count[c.Canon()]++
	}
	for _, c := range new {
		count[c.Canon()]--
	}
	var out []core.Circuit
	for _, c := range old {
		if count[c.Canon()] != 0 {
			out = append(out, c.Canon())
			count[c.Canon()] = 0
		}
	}
	for _, c := range new {
		if count[c.Canon()] != 0 {
			out = append(out, c.Canon())
			count[c.Canon()] = 0
		}
	}
	return out
}
