package openoptics

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestNoBarePacketConstruction is a lint-style gate for the pooled packet
// lifecycle: every packet must be built through PacketPool.NewPacket (or
// the unpooled core.AllocPacket fallback), never by taking the address of
// a bare composite literal or new(). Bare construction bypasses the pool —
// the packet never recycles, pool identity is zeroed, and Free() becomes a
// silent no-op — so a single stray literal quietly reintroduces per-packet
// heap allocation. Passing a core.Packet{...} *value* as the template
// argument to NewPacket is fine and is what this test leaves alone.
//
// Scope: non-test sources outside internal/core (the pool implementation
// and core's own tests construct records directly by design).
func TestNoBarePacketConstruction(t *testing.T) {
	bare := regexp.MustCompile(`&core\.Packet\{|new\(core\.Packet\)|&Packet\{|new\(Packet\)`)
	var offenders []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || path == filepath.Join("internal", "core") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if bare.MatchString(line) {
				offenders = append(offenders, path+":"+strconv.Itoa(i+1)+": "+strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Errorf("bare core.Packet construction outside internal/core — route through PacketPool.NewPacket or core.AllocPacket:\n  %s",
			strings.Join(offenders, "\n  "))
	}
}

