package openoptics_test

// One benchmark per table and figure of the paper's evaluation, wrapping
// the drivers in experiments/. Each reports its headline metrics through
// b.ReportMetric; the full row-by-row output comes from `go run
// ./cmd/oobench -exp <id>`.
//
// Benchmarks default to the drivers' reduced "quick" scale so the whole
// suite completes in minutes; set OPENOPTICS_FULL=1 for paper-scale runs.

import (
	"io"
	"os"
	"testing"

	"openoptics"
	"openoptics/experiments"
	"openoptics/internal/traffic"
)

func benchParams() experiments.Params {
	return experiments.Params{Quick: os.Getenv("OPENOPTICS_FULL") == "", Seed: 42}
}

func BenchmarkFig8MiceFCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mice["clos"].Percentile(99)/1e6, "clos-p99-ms")
		b.ReportMetric(r.Mice["rotornet-vlb"].Percentile(99)/1e6, "vlb-p99-ms")
		b.ReportMetric(r.Mice["rotornet-ucmp"].Percentile(99)/1e6, "ucmp-p99-ms")
		b.ReportMetric(r.Mice["opera"].Percentile(99)/1e6, "opera-p99-ms")
	}
}

func BenchmarkFig8ElephantFCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Elephant["clos"].Mean()/1e6, "clos-mean-ms")
		b.ReportMetric(r.Elephant["rotornet-vlb"].Mean()/1e6, "vlb-mean-ms")
		b.ReportMetric(r.Elephant["jupiter"].Mean()/1e6, "jupiter-mean-ms")
	}
}

func BenchmarkFig9Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.DupAck == 3 {
				b.ReportMetric(row.ThroughputBps/1e9, row.Name+"-gbps")
			}
		}
	}
}

func BenchmarkFig10OCSChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FCT["vlb"]["LC-200us"].Percentile(99)/1e6, "vlb-200us-p99-ms")
		b.ReportMetric(r.FCT["vlb"]["AWGR-2us"].Percentile(99)/1e6, "vlb-2us-p99-ms")
		b.ReportMetric(r.FCT["ucmp"]["LC-200us"].Percentile(99)/1e6, "ucmp-200us-p99-ms")
	}
}

func BenchmarkFig11SwitchDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MinNs, "min-ns")
		b.ReportMetric(r.MaxNs, "max-ns")
		b.ReportMetric(r.SpreadNs, "rotation-var-ns")
	}
}

func BenchmarkFig12EQOError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Error[50].Max(), "err50ns-max-B")
		b.ReportMetric(r.Error[800].Max(), "err800ns-max-B")
	}
}

func BenchmarkFig13UDPLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Plateaus), "cdf-steps")
		b.ReportMetric(r.RTT.Percentile(50)/1e3, "rtt-p50-us")
		b.ReportMetric(r.RTT.Max()/1e3, "rtt-max-us")
	}
}

func BenchmarkFig14OffloadRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((r.VMA.Max()-r.VMA.Min())/1e3, "vma-range-us")
		b.ReportMetric((r.Kernel.Max()-r.Kernel.Min())/1e3, "kernel-range-us")
	}
}

func BenchmarkTable2Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(experiments.Params{Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Usage.Max(), "max-resource-pct")
		b.ReportMetric(float64(r.Entries), "entries")
	}
}

func BenchmarkTable3BufferUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cells["hadoop"]["vlb"].P999Bytes/1e6, "hadoop-vlb-p999-MB")
		b.ReportMetric(r.Cells["hadoop"]["vlb+offload"].P999Bytes/1e6, "hadoop-offload-p999-MB")
		b.ReportMetric(r.Cells["hadoop"]["hoho"].P999Bytes/1e6, "hadoop-hoho-p999-MB")
	}
}

func BenchmarkTable4Congestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cells["hadoop"]["none"].LossRate*100, "none-loss-pct")
		b.ReportMetric(r.Cells["hadoop"]["detect+pushback"].LossRate*100, "both-loss-pct")
		b.ReportMetric(r.Cells["hadoop"]["detect+pushback"].P95DelayNs/1e3, "both-p95-us")
	}
}

func BenchmarkMinSlice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.MinSlice(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Budget.GuardNs), "guard-ns")
		b.ReportMetric(float64(r.Budget.MinSliceNs), "min-slice-ns")
	}
}

func BenchmarkAblationGuardband(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGuardband(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Loss[0]*100, "guard0-loss-pct")
		b.ReportMetric(r.Loss[200]*100, "guard200-loss-pct")
	}
}

func BenchmarkAblationLookupMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationLookup(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Entries["hop"]), "hop-entries")
		b.ReportMetric(float64(r.Entries["source"]), "source-entries")
	}
}

func BenchmarkAblationMultipath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationMultipath(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Reorders["packet"]), "packet-reorders")
		b.ReportMetric(float64(r.Reorders["flow"]), "flow-reorders")
	}
}

func BenchmarkAblationQueueCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationQueueCount(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Wraps[2]), "q2-wrap-drops")
		b.ReportMetric(float64(r.Wraps[32]), "q32-wrap-drops")
	}
}

func BenchmarkAblationEQO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationEQO(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Loss["eqo-50ns"]*100, "eqo-loss-pct")
		b.ReportMetric(r.Loss["oracle"]*100, "oracle-loss-pct")
	}
}

// Micro-benchmarks of the hot paths, for regression tracking.

func BenchmarkTimeFlowLookup(b *testing.B) {
	n, err := openoptics.New(openoptics.Config{NodeNum: 16, Uplink: 2, SliceDurationNs: 100_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	circuits, numSlices, err := openoptics.RoundRobin(16, 2)
	if err != nil {
		b.Fatal(err)
	}
	if err := n.DeployTopo(circuits, numSlices); err != nil {
		b.Fatal(err)
	}
	paths := n.VLB(circuits, numSlices, openoptics.RoutingOptions{})
	if err := n.DeployRouting(paths, openoptics.LookupHop, openoptics.MultipathPacket); err != nil {
		b.Fatal(err)
	}
	tab := n.Switches()[0].Table()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arr := openoptics.Slice(i % numSlices)
		_, _ = tab.Lookup(arr, 0, openoptics.NodeID(1+i%15), uint64(i)*2654435761, uint64(i))
	}
}

func BenchmarkEndToEndPacketRate(b *testing.B) {
	// Measures simulator throughput: packets pushed through a RotorNet
	// from one host to another per wall second.
	n := benchRotorNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Run(1_000_000) // 1 ms of virtual time per iteration
	}
}

// benchRotorNet builds the 4-node RotorNet used by the end-to-end hot-path
// benchmarks, with a line-rate UDP probe already injecting traffic.
func benchRotorNet(b *testing.B) *openoptics.Net {
	b.Helper()
	n, err := openoptics.New(openoptics.Config{NodeNum: 4, Uplink: 1, SliceDurationNs: 100_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	circuits, numSlices, err := openoptics.RoundRobin(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := n.DeployTopo(circuits, numSlices); err != nil {
		b.Fatal(err)
	}
	paths := n.VLB(circuits, numSlices, openoptics.RoutingOptions{})
	if err := n.DeployRouting(paths, openoptics.LookupHop, openoptics.MultipathPacket); err != nil {
		b.Fatal(err)
	}
	eps := n.Endpoints()
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[2])
	probe.IntervalNs = 1_000
	probe.Start(1 << 62)
	return n
}

// Telemetry overhead guard: the same hot path with telemetry fully off and
// with the registry plus 1%-sampled tracing attached. Compare ns/op of the
// two in the bench output; the enabled variant should cost only a few
// percent. The disabled variant also guards the instrumentation itself —
// nil-check-only paths must not regress the baseline.

func BenchmarkTelemetryDisabled(b *testing.B) {
	n := benchRotorNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Run(1_000_000)
	}
	b.ReportMetric(float64(n.Engine().Processed)/float64(b.N), "events/op")
}

func BenchmarkTelemetryEnabled(b *testing.B) {
	n := benchRotorNet(b)
	n.Metrics()
	tr := n.Tracer(0.01)
	tr.SetSink(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Run(1_000_000)
	}
	b.ReportMetric(float64(n.Engine().Processed)/float64(b.N), "events/op")
	b.ReportMetric(float64(tr.Finished)/float64(b.N), "traces/op")
}
