package openoptics

// System-level invariant tests: packet conservation, determinism, and
// calendar-timing properties checked across randomized scenarios with
// testing/quick.

import (
	"testing"
	"testing/quick"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/traffic"
)

// buildRandomRotor builds a RotorNet-style net from fuzzed parameters.
func buildRandomRotor(nodesRaw, uplinkRaw uint8, seed uint64) (*Net, int, error) {
	nodes := 4 + int(nodesRaw%5)   // 4..8
	uplink := 1 + int(uplinkRaw%2) // 1..2
	n, err := New(Config{
		NodeNum:         nodes,
		Uplink:          uplink,
		SliceDurationNs: 100_000,
		Seed:            seed | 1,
	})
	if err != nil {
		return nil, 0, err
	}
	circuits, numSlices, err := RoundRobin(nodes, uplink)
	if err != nil {
		return nil, 0, err
	}
	if err := n.DeployTopo(circuits, numSlices); err != nil {
		return nil, 0, err
	}
	paths := n.VLB(circuits, numSlices, RoutingOptions{})
	if err := n.DeployRouting(paths, LookupHop, MultipathPacket); err != nil {
		return nil, 0, err
	}
	return n, nodes, nil
}

// TestInvariants bundles the system-level invariant checks under one name
// so the tier-2 gate (`make check`) can run exactly this suite with
// `go test -run TestInvariants`.
func TestInvariants(t *testing.T) {
	t.Run("PacketConservation", TestPacketConservation)
	t.Run("Determinism", TestDeterminism)
	t.Run("CircuitExclusivity", TestCircuitExclusivity)
	t.Run("SliceAlignment", TestSliceAlignment)
}

// TestPacketConservation: every packet a host sent is either delivered to
// a host, dropped with an accounted reason, still buffered in the network,
// or parked on a host — nothing vanishes.
func TestPacketConservation(t *testing.T) {
	f := func(nodesRaw, uplinkRaw uint8, seed uint64) bool {
		n, nodes, err := buildRandomRotor(nodesRaw, uplinkRaw, seed)
		if err != nil {
			t.Log(err)
			return false
		}
		eps := n.Endpoints()
		// UDP-only traffic so no retransmissions blur the count.
		var sent uint64
		rng := seed | 1
		for i := 0; i < 200; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			src := int(rng>>33) % nodes
			dst := (src + 1 + int(rng>>40)%(nodes-1)) % nodes
			flow := core.FlowKey{SrcHost: eps[src].Host, DstHost: eps[dst].Host,
				SrcPort: uint16(i), DstPort: 7, Proto: core.ProtoUDP}
			if eps[src].Stack.SendUDP(flow, eps[src].Node, eps[dst].Node, 800, false) {
				sent++
			}
		}
		n.Run(20 * time.Millisecond) // several cycles: everything settles
		c := n.Counters()
		fab := n.OpticalFabric()
		var hostRx, parked uint64
		var buffered int64
		for _, h := range n.Hosts() {
			hostRx += h.Counters.RxPkts
			parked += uint64(h.ParkedPackets())
		}
		for node := 0; node < nodes; node++ {
			buffered += n.BufferUsage(core.NodeID(node), core.NoPort)
		}
		drops := c.DropsNoRoute + c.DropsBuffer + c.DropsWrap + c.DropsCongest +
			c.DropsTTL + fab.DropsGuard + fab.DropsNoCircuit
		// Delivered counts switch->host handoffs of data packets.
		if c.Delivered+drops+parked < sent && buffered == 0 {
			t.Logf("sent=%d delivered=%d drops=%d parked=%d buffered=%d",
				sent, c.Delivered, drops, parked, buffered)
			return false
		}
		// And nothing is created from thin air: deliveries never exceed sends.
		return c.Delivered <= sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism: identical configuration and seed produce identical
// results; a different seed produces different microscopic behaviour.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, float64) {
		n, _, err := buildRandomRotor(3, 0, seed)
		if err != nil {
			t.Fatal(err)
		}
		eps := n.Endpoints()
		sink := traffic.NewSink(eps)
		mc := traffic.NewMemcached(n.Engine(), eps[0], eps[1:], seed)
		mc.Start(int64(15 * time.Millisecond))
		n.Run(25 * time.Millisecond)
		return n.Counters().TxPkts, sink.FCTSample(traffic.PortMemcached).Mean()
	}
	tx1, fct1 := run(77)
	tx2, fct2 := run(77)
	if tx1 != tx2 || fct1 != fct2 {
		t.Fatalf("same seed diverged: tx %d/%d fct %g/%g", tx1, tx2, fct1, fct2)
	}
	tx3, fct3 := run(78)
	if tx1 == tx3 && fct1 == fct3 {
		t.Fatal("different seed produced identical run — randomness not wired")
	}
}

// TestCircuitExclusivity: the fabric never carries a packet over a port
// pair that has no circuit in the current slice — enforced by construction,
// observed here via the no-circuit drop counter staying at zero for traffic
// that follows deployed routing.
func TestCircuitExclusivity(t *testing.T) {
	n, nodes, err := buildRandomRotor(2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	eps := n.Endpoints()
	sink := traffic.NewSink(eps)
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[nodes-1])
	probe.IntervalNs = 30_000
	probe.Start(int64(30 * time.Millisecond))
	n.Run(40 * time.Millisecond)
	fab := n.OpticalFabric()
	if fab.DropsNoCircuit != 0 {
		t.Fatalf("routed traffic hit dark circuits %d times", fab.DropsNoCircuit)
	}
	if sink.RTT.N() == 0 {
		t.Fatal("no probes returned")
	}
}

// TestSliceAlignment: packets a switch transmits on an uplink always land
// inside the slice their circuit is live in — the rotation/guard machinery
// never leaks transmissions across slice boundaries.
func TestSliceAlignment(t *testing.T) {
	n, _, err := buildRandomRotor(0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	sched := n.Schedule()
	bad := 0
	n.Switches()[1].WireDelaySampler = func(ns int64, size int32) {
		// Arrival time at the peer: subtracting the wire delay gives the
		// TX trigger; both must be in the same slice.
		rx := n.Engine().Now()
		tx := rx - ns
		if sched.SliceAt(rx) != sched.SliceAt(tx) {
			bad++
		}
	}
	eps := n.Endpoints()
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[1])
	probe.IntervalNs = 10_000
	probe.Start(int64(30 * time.Millisecond))
	n.Run(40 * time.Millisecond)
	if bad != 0 {
		t.Fatalf("%d transmissions crossed a slice boundary", bad)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg, err := LoadConfig("testdata/rotornet.json")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NodeNum != 8 || cfg.SliceDurationNs != 100_000 || !cfg.PushBack {
		t.Fatalf("config = %+v", cfg)
	}
	if len(cfg.IPs) != 8 {
		t.Fatalf("ips = %v", cfg.IPs)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Hosts()) != 8 {
		t.Fatal("wrong host count from JSON config")
	}
	if _, err := LoadConfig("testdata/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
