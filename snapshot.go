package openoptics

import (
	"openoptics/internal/core"
	"openoptics/internal/fabric"
	"openoptics/internal/sim"
	"openoptics/internal/switchsim"
	"openoptics/internal/telemetry"
)

// NetSnapshot is the network-wide, time-slice-aligned state view the live
// observability plane serves at /snapshot: per-switch calendar-queue
// occupancy (true and EQO-estimated), per-link bandwidth usage, and the
// fabric circuit state, all captured at one simulation instant. Capture
// runs on the simulation goroutine; the result is a deep copy, safe to
// marshal or publish from other goroutines afterwards.
type NetSnapshot struct {
	// TimeNs is the virtual capture time.
	TimeNs int64 `json:"time_ns"`
	// Slice is the current slice per the global (controller) clock;
	// individual devices may disagree by their configured sync error.
	Slice     core.Slice `json:"slice"`
	NumSlices int        `json:"num_slices"`
	// Events is the engine's executed-event count.
	Events uint64 `json:"events"`

	// Epoch is the current scheduling epoch (hot-swap generation) and
	// Reconfigs the cumulative Net.Reprogram count; LastReprogramNs stamps
	// the most recent swap so watchers and the flight recorder can
	// attribute anomalies to reconfiguration events. The installed schedule
	// itself is visible through Optical.Circuits/NumSlices.
	Epoch           int    `json:"epoch"`
	Reconfigs       uint64 `json:"reconfigs"`
	LastReprogramNs int64  `json:"last_reprogram_ns,omitempty"`

	Switches []switchsim.Snapshot `json:"switches"`
	Links    []LinkSnapshot       `json:"links"`
	Optical  fabric.OpticalSnapshot `json:"optical"`
	// Electrical is nil when no electrical fabric is configured.
	Electrical *fabric.ElectricalSnapshot `json:"electrical,omitempty"`

	// Totals is the network-wide switch counter sum.
	Totals switchsim.Counters `json:"totals"`

	// Trace is the in-band tracer's counters and running latency
	// attribution; nil when tracing is not attached.
	Trace *telemetry.TraceStats `json:"trace,omitempty"`

	// Engine is the scheduler-pressure snapshot (always present — the
	// counters are collected unconditionally) and Pool the packet-pool
	// statistics, so live watchers see engine health next to network
	// health.
	Engine sim.SchedPressure `json:"engine"`
	Pool   core.PoolStats    `json:"pool"`

	// Digest is the determinism auditor's live status; nil when no
	// auditor is attached.
	Digest *AuditStatus `json:"digest,omitempty"`
}

// LinkSnapshot is one optical-fabric link's bandwidth usage, identified by
// the switch side of the wire.
type LinkSnapshot struct {
	Node core.NodeID `json:"node"`
	Port core.PortID `json:"port"`
	// BandwidthBps is the line rate.
	BandwidthBps int64 `json:"bandwidth_bps"`
	// TxBytes/RxBytes count the switch→fabric / fabric→switch directions.
	TxBytes uint64 `json:"tx_bytes"`
	RxBytes uint64 `json:"rx_bytes"`
	// Utilization is the switch→fabric fraction of capacity used since
	// time zero (the bw_usage view, normalized).
	Utilization float64 `json:"utilization"`
}

// Snapshot captures the instantaneous network-wide state. Call on the
// simulation goroutine (between Run calls, or from a scheduled event).
// Per-switch BufferedBytes equals BufferUsage(node, NoPort) at the capture
// instant by construction.
func (n *Net) Snapshot() NetSnapshot {
	now := n.eng.Now()
	snap := NetSnapshot{
		TimeNs:          now,
		Slice:           n.sched.SliceAt(now),
		NumSlices:       n.sched.NumSlices,
		Events:          n.eng.Processed,
		Epoch:           n.epoch,
		Reconfigs:       n.reconfigs,
		LastReprogramNs: n.lastReprogramNs,
		Switches:        make([]switchsim.Snapshot, 0, len(n.switches)),
		Optical:         n.optical.Snapshot(),
	}
	for _, sw := range n.switches {
		s := sw.Snapshot()
		snap.Totals.Add(&s.Counters)
		snap.Switches = append(snap.Switches, s)
	}
	links := n.optical.Links()
	snap.Links = make([]LinkSnapshot, 0, len(links))
	for fp, l := range links {
		node, port, ok := n.optical.PortInfo(fp)
		if !ok {
			continue
		}
		snap.Links = append(snap.Links, LinkSnapshot{
			Node: node, Port: port,
			BandwidthBps: l.BandwidthBps,
			TxBytes:      l.BytesAB, RxBytes: l.BytesBA,
			Utilization: linkUtil(l.BytesAB, l.BandwidthBps, now),
		})
	}
	if n.elec != nil {
		es := n.elec.Snapshot()
		snap.Electrical = &es
	}
	if n.tracer != nil {
		ts := n.tracer.Stats()
		snap.Trace = &ts
	}
	snap.Engine = n.eng.SchedPressure()
	snap.Pool = n.pool.Stats()
	if n.audit != nil {
		st := n.audit.Status()
		snap.Digest = &st
	}
	return snap
}
