// Package openoptics is the public API of the OpenOptics research
// framework for optical data center networks (SIGCOMM 2024): a unified
// workflow for traffic-aware (TA) and traffic-oblivious (TO) optical
// architectures built on the time-flow table abstraction.
//
// Usage mirrors the paper's Fig. 5 programs: create a Net from a static
// Config, generate circuits with a topology function (RoundRobin, Edmonds,
// BvN, Jupiter, SORN or a custom one built on Connect), generate paths
// with a routing function (Direct, ECMP, WCMP, KSP, VLB, Opera, UCMP,
// HOHO), then DeployTopo and DeployRouting. Traffic runs on the simulated
// backend — switches with calendar-queue time-based scheduling, hosts with
// a libvma-style stack, and an emulated optical fabric — all driven by a
// deterministic discrete-event engine.
package openoptics

import (
	"encoding/json"
	"fmt"
	"os"
)

// Config is the static configuration (§4.1): hardware shape, slice timing,
// and backend service knobs. JSON field names follow the paper's examples.
type Config struct {
	// Node is the endpoint type attached to the optical fabric: "rack"
	// (switch-centric, ToRs with hosts below) or "host" (host-centric,
	// NICs directly on the fabric).
	Node string `json:"node"`
	// NodeNum is the number of endpoint nodes.
	NodeNum int `json:"node_num"`
	// Uplink is the number of optical uplinks per node.
	Uplink int `json:"uplink"`
	// HostsPerNode is the number of hosts under each rack node
	// (default 1; forced to 1 for host-centric configs).
	HostsPerNode int `json:"hosts_per_node"`
	// IPs optionally names the endpoints (cosmetic, as in Fig. 5).
	IPs []string `json:"ips,omitempty"`

	// SliceDurationNs is the optical time-slice duration (default 100 µs).
	SliceDurationNs int64 `json:"slice_duration_ns"`
	// GuardNs is the per-slice guardband; the effective guard is
	// max(GuardNs, ReconfDelayNs) (default 200 ns, the §7 value).
	GuardNs int64 `json:"guard_ns"`
	// ReconfDelayNs is the OCS circuit reconfiguration delay.
	ReconfDelayNs int64 `json:"reconf_delay_ns"`

	// LineRateGbps is the optical uplink and host NIC rate (default 100).
	LineRateGbps float64 `json:"line_rate_gbps"`
	// ElectricalGbps adds a parallel electrical fabric at this rate
	// (0 = none); used by Clos baselines and hybrid architectures.
	ElectricalGbps float64 `json:"electrical_gbps"`
	// PropDelayNs is the one-way fiber propagation delay (default 100).
	PropDelayNs int64 `json:"prop_delay_ns"`
	// CutThroughNs is the emulated fabric's cut-through latency
	// (default 700 ns).
	CutThroughNs int64 `json:"cut_through_ns"`
	// SwitchPipelineNs is the switch ingress pipeline latency
	// (default 600 ns).
	SwitchPipelineNs int64 `json:"switch_pipeline_ns"`

	// OCSCount and OCSPorts describe the physical OCS structure for
	// deploy_topo feasibility checks (defaults: Uplink devices with
	// NodeNum ports each).
	OCSCount int `json:"ocs_count"`
	OCSPorts int `json:"ocs_ports"`

	// CalendarQueues is the per-port calendar depth K (default 32).
	CalendarQueues int `json:"calendar_queues"`
	// BufferBytes is the per-switch shared buffer (default 64 MB).
	BufferBytes int64 `json:"buffer_bytes"`
	// EQOIntervalNs is the occupancy-estimation update interval
	// (default 50 ns; -1 disables estimation error).
	EQOIntervalNs int64 `json:"eqo_interval_ns"`

	// CongestionDetection enables the queue-full/threshold service.
	CongestionDetection bool `json:"congestion_detection"`
	// CongestionThresholdBytes is the per-queue CC threshold (0 = off).
	CongestionThresholdBytes int64 `json:"congestion_threshold_bytes"`
	// Response is the congestion reaction: "drop", "trim", or "defer".
	Response string `json:"response"`
	// PushBack enables last-resort traffic push-back.
	PushBack bool `json:"push_back"`
	// OffloadRank enables buffer offloading for ranks at or beyond it.
	OffloadRank int `json:"offload_rank"`

	// FlowPausing holds elephant flows on hosts until circuits appear.
	FlowPausing bool `json:"flow_pausing"`
	// ElephantBytes is the flow-aging threshold (default 1 MB).
	ElephantBytes int64 `json:"elephant_bytes"`
	// ReportIntervalNs enables host traffic reports (0 = off).
	ReportIntervalNs int64 `json:"report_interval_ns"`

	// SyncErrorNs bounds per-device clock error (default 0 = perfect
	// sync; set 28 for the paper's measured bound).
	SyncErrorNs int64 `json:"sync_error_ns"`

	// DupAckThreshold is the TCP fast-retransmit threshold (default 3).
	DupAckThreshold int `json:"dupack_threshold"`
	// RTONs is the TCP retransmission timeout (default 1 ms).
	RTONs int64 `json:"rto_ns"`
	// TDTCPDivisions enables Time-division TCP on the hosts with that
	// many per-division congestion states (0 = classic TCP). The
	// division period defaults to the slice duration.
	TDTCPDivisions int `json:"tdtcp_divisions"`

	// Seed fixes all randomness in the run.
	Seed uint64 `json:"seed"`
}

// LoadConfig reads a JSON static configuration file.
func LoadConfig(path string) (Config, error) {
	var c Config
	b, err := os.ReadFile(path)
	if err != nil {
		return c, fmt.Errorf("openoptics: %w", err)
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("openoptics: parsing %s: %w", path, err)
	}
	return c, nil
}

// withDefaults normalizes the configuration and applies defaults.
func (c Config) withDefaults() (Config, error) {
	if c.Node == "" {
		c.Node = "rack"
	}
	if c.Node != "rack" && c.Node != "host" {
		return c, fmt.Errorf("openoptics: node type %q (want rack|host)", c.Node)
	}
	if c.NodeNum < 2 {
		return c, fmt.Errorf("openoptics: node_num must be >= 2, got %d", c.NodeNum)
	}
	if c.Uplink < 1 {
		c.Uplink = 1
	}
	if c.Node == "host" {
		c.HostsPerNode = 1
	}
	if c.HostsPerNode < 1 {
		c.HostsPerNode = 1
	}
	if c.SliceDurationNs <= 0 {
		c.SliceDurationNs = 100_000
	}
	if c.GuardNs <= 0 {
		c.GuardNs = 200
	}
	if c.LineRateGbps <= 0 {
		c.LineRateGbps = 100
	}
	if c.PropDelayNs <= 0 {
		c.PropDelayNs = 100
	}
	if c.CutThroughNs <= 0 {
		c.CutThroughNs = 700
	}
	if c.SwitchPipelineNs <= 0 {
		c.SwitchPipelineNs = 600
	}
	// Default to one large OCS (the testbed's MEMS device): any pairing
	// of uplink ports is then feasible. Multi-OCS planes (rotor-style,
	// one device per uplink) are opted into with ocs_count.
	if c.OCSCount <= 0 {
		c.OCSCount = 1
	}
	if c.OCSPorts <= 0 {
		c.OCSPorts = c.NodeNum * ((c.Uplink + c.OCSCount - 1) / c.OCSCount)
	}
	if c.Response == "" {
		c.Response = "drop"
	}
	switch c.Response {
	case "drop", "trim", "defer":
	default:
		return c, fmt.Errorf("openoptics: response %q (want drop|trim|defer)", c.Response)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// guard returns the effective per-slice guardband.
func (c Config) guard() int64 {
	g := c.GuardNs
	if c.ReconfDelayNs > g {
		g = c.ReconfDelayNs
	}
	return g
}

// lineRateBps returns the optical line rate in bits/s.
func (c Config) lineRateBps() int64 { return int64(c.LineRateGbps * 1e9) }
