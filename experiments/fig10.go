package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/arch"
	"openoptics/internal/stats"
	"openoptics/internal/traffic"
)

// OCSProfile is one of the sampled optical device classes of Case III,
// characterized by the time-slice duration it can sustain (slice ≈ 10× its
// reconfiguration delay for a 90% duty cycle).
type OCSProfile struct {
	Name    string
	SliceNs int64
	GuardNs int64
}

// Fig10Profiles are the four device classes swept in Fig. 10.
func Fig10Profiles() []OCSProfile {
	return []OCSProfile{
		{Name: "AWGR-2us", SliceNs: 2_000, GuardNs: 200},
		{Name: "PLZT-20us", SliceNs: 20_000, GuardNs: 2_000},
		{Name: "DMD-100us", SliceNs: 100_000, GuardNs: 10_000},
		{Name: "LC-200us", SliceNs: 200_000, GuardNs: 20_000},
	}
}

// Fig10Result holds the Case III hardware-choice study: Memcached mice
// FCTs on RotorNet across OCS device classes, under VLB and UCMP routing.
type Fig10Result struct {
	Profiles []OCSProfile
	// FCT[routing][profile name]
	FCT map[string]map[string]*stats.Sample
}

// Fig10 implements Case III (§6): the same architecture and workload over
// four OCS technologies, showing VLB's tail growing with the slice
// duration while UCMP stays flat except at the shortest slices where
// slice misses bite.
func Fig10(p Params) (*Fig10Result, error) {
	nodes := p.nodes(8)
	dur := p.dur(100*time.Millisecond, 25*time.Millisecond)
	res := &Fig10Result{
		Profiles: Fig10Profiles(),
		FCT:      map[string]map[string]*stats.Sample{"vlb": {}, "ucmp": {}},
	}
	for _, prof := range res.Profiles {
		for _, scheme := range []arch.Scheme{arch.SchemeVLB, arch.SchemeUCMP} {
			prof := prof
			o := arch.Options{
				Nodes: nodes, HostsPerNode: 1, Seed: p.seed(),
				SliceDurationNs: prof.SliceNs,
				Tune: func(c *openoptics.Config) {
					c.GuardNs = prof.GuardNs
					c.CongestionDetection = true
					c.Response = "defer" // UCMP's native slice-miss handling
				},
			}
			in, err := arch.RotorNet(o, scheme)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s/%s: %w", prof.Name, scheme, err)
			}
			eps := in.Net.Endpoints()
			sink := traffic.NewSink(eps)
			mc := traffic.NewMemcached(in.Net.Engine(), eps[0], eps[1:], p.seed())
			mc.Start(int64(dur))
			// Background trace load, per the §7 methodology: without
			// competing traffic, slice misses never compound and every
			// device class looks ideal.
			bg, err := traffic.NewReplay(in.Net.Engine(), eps, traffic.RPC(),
				0.3, int64(in.Net.Cfg.LineRateGbps*1e9), p.seed()^0xb6)
			if err != nil {
				return nil, err
			}
			bg.Start(int64(dur))
			if err := in.Run(dur + dur/2); err != nil {
				return nil, err
			}
			res.FCT[string(scheme)][prof.Name] = sink.FCTSample(traffic.PortMemcached)
		}
	}
	return res, nil
}

func (r *Fig10Result) String() string {
	var b strings.Builder
	for _, scheme := range []string{"vlb", "ucmp"} {
		fmt.Fprintf(&b, "Fig. 10 (%s) — RotorNet mice FCT vs OCS slice duration\n", scheme)
		for _, prof := range r.Profiles {
			s := r.FCT[scheme][prof.Name]
			fmt.Fprintf(&b, "  %s\n", fctRow(prof.Name, s))
		}
	}
	return b.String()
}
