package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/core"
	"openoptics/internal/sim"
	"openoptics/internal/stats"
)

// Fig12Result holds the queue-occupancy-estimation accuracy study
// (Fig. 12): for each EQO update interval, the distribution of
// |estimated − actual| queue occupancy sampled while line-rate and bursty
// traffic fill and drain the calendar queues.
type Fig12Result struct {
	Intervals []int64                 // ns
	Error     map[int64]*stats.Sample // bytes
}

// Fig12 reproduces the Appx. A measurement: the estimation error shrinks
// with the update interval; at 50 ns it stays below one MTU-sized packet
// (the paper reports ≤ 725 B), at the cost of generator packet rate.
func Fig12(p Params) (*Fig12Result, error) {
	dur := p.dur(20*time.Millisecond, 6*time.Millisecond)
	intervals := []int64{50, 100, 200, 400, 800}
	res := &Fig12Result{Intervals: intervals, Error: make(map[int64]*stats.Sample)}
	for _, iv := range intervals {
		sample, err := fig12Run(iv, dur, p.seed())
		if err != nil {
			return nil, fmt.Errorf("fig12 interval %d: %w", iv, err)
		}
		res.Error[iv] = sample
	}
	return res, nil
}

// fig12Run is the Appx. A microbenchmark: the observed ToR's uplink is
// fed a mix of line-rate and bursty raw traffic that repeatedly fills and
// drains the active calendar queue, while a sampler compares the
// ingress-side estimate with the egress ground truth.
func fig12Run(interval int64, dur time.Duration, seed uint64) (*stats.Sample, error) {
	cfg := openoptics.Config{
		NodeNum:         4,
		Uplink:          1,
		SliceDurationNs: 100_000,
		EQOIntervalNs:   interval,
		Seed:            seed,
	}
	n, err := openoptics.New(cfg)
	if err != nil {
		return nil, err
	}
	circuits, numSlices, err := openoptics.RoundRobin(cfg.NodeNum, 1)
	if err != nil {
		return nil, err
	}
	if err := n.DeployTopo(circuits, numSlices); err != nil {
		return nil, err
	}
	paths := n.Direct(circuits, numSlices, openoptics.RoutingOptions{})
	if err := n.DeployRouting(paths, core.LookupHop, core.MultipathNone); err != nil {
		return nil, err
	}
	sample := stats.NewSample()
	sw := n.Switches()[0]
	eng := n.Engine()
	rng := sim.NewRand(seed ^ 0xf12)
	var pktID uint64
	inject := func(count int) {
		for i := 0; i < count; i++ {
			pktID++
			pkt := n.PacketPool().NewPacket(core.Packet{
				ID:      pktID,
				Flow:    core.FlowKey{SrcHost: 0, DstHost: 1, SrcPort: 1, DstPort: 2, Proto: core.ProtoUDP},
				SrcNode: 0, DstNode: core.NodeID(1 + int(pktID)%3),
				Size: 1500, Payload: 1500 - core.HeaderBytes,
				Created: eng.Now(),
				TTL:     core.DefaultTTL,
			})
			sw.Receive(pkt, core.PortID(1)) // downlink-side ingress
		}
	}
	// Line-rate feed (one MTU per 120 ns at 100 Gbps) plus periodic
	// bursts that overfill the queue, so it cycles full <-> empty.
	eng.Every(1_000, 240, func() bool { // ~50% line rate baseline
		if eng.Now() > int64(dur) {
			return false
		}
		inject(1)
		return true
	})
	eng.Every(5_000, 20_000, func() bool { // bursts
		if eng.Now() > int64(dur) {
			return false
		}
		inject(20 + rng.Intn(20))
		return true
	})
	// Sampler: estimate vs ground truth on the active queue.
	eng.Every(10_000, 730, func() bool {
		if eng.Now() > int64(dur) {
			return false
		}
		qi := sw.ActiveQueue()
		est := sw.EstimatedQueueBytes(0, qi)
		act := sw.QueueBytes(0, qi)
		diff := est - act
		if diff < 0 {
			diff = -diff
		}
		sample.Add(float64(diff))
		return true
	})
	n.Run(dur + time.Millisecond)
	if sample.N() == 0 {
		return nil, fmt.Errorf("no samples")
	}
	return sample, nil
}

func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 12 — EQO error vs update interval\n")
	rows := make([][]string, 0, len(r.Intervals))
	for _, iv := range r.Intervals {
		s := r.Error[iv]
		rows = append(rows, []string{
			fmt.Sprintf("%d ns", iv), fmt.Sprintf("%d", s.N()),
			fmt.Sprintf("%.0f B", s.Mean()), fmt.Sprintf("%.0f B", s.Percentile(99)),
			fmt.Sprintf("%.0f B", s.Max()),
		})
	}
	b.WriteString(table([]string{"interval", "n", "mean", "p99", "max"}, rows))
	b.WriteString("(paper: 50 ns interval keeps the error under 725 B, <1 MTU packet)\n")
	return b.String()
}
