package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/core"
	"openoptics/internal/stats"
)

// Fig14Result holds the buffer-offloading RTT stability study (Fig. 14 /
// Appx. A): 1500 B packets parked on a host at 100 µs intervals and
// returned on receipt; the libvma-style stack must keep the RTT variance
// within a microsecond, unlike a kernel-module path.
type Fig14Result struct {
	VMA    *stats.Sample // park->return RTT, ns
	Kernel *stats.Sample
	// IntervalDeviation: |gap between consecutive returns − 100 µs|.
	VMADev    *stats.Sample
	KernelDev *stats.Sample
}

// Fig14 drives the offload path directly: the observed ToR parks one
// packet per interval on its host and measures the round trip and the
// spacing jitter of the returns, for the userspace stack and for a
// kernel-like stack with tens of microseconds of scheduling jitter.
func Fig14(p Params) (*Fig14Result, error) {
	dur := p.dur(60*time.Millisecond, 20*time.Millisecond)
	res := &Fig14Result{}
	var err error
	// libvma: sub-microsecond stack jitter (the paper measures 0.75 µs
	// of variance); kernel module: tens of microseconds of scheduling
	// noise.
	res.VMA, res.VMADev, err = fig14Run(750, dur, p.seed())
	if err != nil {
		return nil, err
	}
	res.Kernel, res.KernelDev, err = fig14Run(30_000, dur, p.seed())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// fig14Run replicates the Appx. A probe: the observed ToR parks a 1500 B
// packet on its host every 100 µs; the host returns it upon receipt. The
// measured round trip isolates the switch<->host loop — downlink and
// uplink serialization plus the host stack — so its variance is the
// offloading stack's jitter, not circuit scheduling.
func fig14Run(jitterNs int64, dur time.Duration, seed uint64) (*stats.Sample, *stats.Sample, error) {
	cfg := openoptics.Config{
		NodeNum:         2,
		Uplink:          1,
		SliceDurationNs: 100_000,
		Seed:            seed,
	}
	n, err := openoptics.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, h := range n.Hosts() {
		h.Cfg.ReturnJitterNs = jitterNs
	}
	circuits := []core.Circuit{openoptics.Connect(0, 0, 1, 0, core.WildcardSlice)}
	if err := n.DeployTopo(circuits, 1); err != nil {
		return nil, nil, err
	}
	paths := n.Direct(circuits, 1, openoptics.RoutingOptions{})
	if err := n.DeployRouting(paths, core.LookupHop, core.MultipathNone); err != nil {
		return nil, nil, err
	}

	rtt := stats.NewSample()
	dev := stats.NewSample()
	sw := n.Switches()[0]
	var lastReturn int64 = -1
	sw.OffloadSampler = func(ns int64) {
		rtt.Add(float64(ns))
		now := n.Engine().Now()
		if lastReturn >= 0 {
			d := now - lastReturn - 100_000
			if d < 0 {
				d = -d
			}
			dev.Add(float64(d))
		}
		lastReturn = now
	}

	// Park one 1500 B packet per 100 µs with no target slice: the host
	// bounces it straight back (plus its stack's jitter).
	eng := n.Engine()
	i := uint64(0)
	eng.Every(7_000, 100_000, func() bool {
		if eng.Now() > int64(dur) {
			return false
		}
		i++
		pkt := n.PacketPool().NewPacket(core.Packet{
			ID:      i,
			Flow:    core.FlowKey{SrcHost: 0, DstHost: 1, SrcPort: 3, DstPort: 4, Proto: core.ProtoUDP},
			SrcNode: 0, DstNode: 1,
			Size: 1500, Payload: 1500 - core.HeaderBytes,
			Created:     eng.Now(),
			OffloadedAt: eng.Now(),
			Flags:       core.FlagOffloaded,
			Ctrl:        core.CtrlOffload,
			CtrlSlice:   core.WildcardSlice,
			SR:          []core.SRHop{{Egress: 0, DepSlice: core.WildcardSlice}},
			TTL:         core.DefaultTTL,
		})
		sw.Counters.Offloads++
		swToHost(n, 0, pkt)
		return true
	})
	n.Run(dur + 5*time.Millisecond)
	if rtt.N() < 10 {
		return nil, nil, fmt.Errorf("fig14: only %d offload RTTs (offloads=%d back=%d)",
			rtt.N(), sw.Counters.Offloads, sw.Counters.OffloadsBack)
	}
	return rtt, dev, nil
}

// swToHost hands a crafted packet to host h's receive path via its
// downlink (the switch-side injection the on-chip generator performs).
func swToHost(n *openoptics.Net, h int, pkt *core.Packet) {
	n.Hosts()[h].Receive(pkt, 0)
}

func (r *Fig14Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 14 — buffer-offload RTT stability (park -> return)\n")
	rows := [][]string{
		{"libvma", fmt.Sprintf("%d", r.VMA.N()), us(r.VMA.Percentile(50)), us(r.VMA.Percentile(95)),
			us(r.VMA.Max() - r.VMA.Min()), us(r.VMADev.Percentile(95))},
		{"kernel", fmt.Sprintf("%d", r.Kernel.N()), us(r.Kernel.Percentile(50)), us(r.Kernel.Percentile(95)),
			us(r.Kernel.Max() - r.Kernel.Min()), us(r.KernelDev.Percentile(95))},
	}
	b.WriteString(table([]string{"stack", "n", "p50", "p95", "range", "interval dev p95"}, rows))
	b.WriteString("(paper: 95% of libvma RTTs within 0.75 µs variance, ±0.25 µs of the 100 µs spacing)\n")
	return b.String()
}
