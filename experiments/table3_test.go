package experiments

import "testing"

func TestTable3Shapes(t *testing.T) {
	r, err := Table3(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range r.Traces {
		vlb := r.Cells[tr]["vlb"].P999Bytes
		off := r.Cells[tr]["vlb+offload"].P999Bytes
		hoho := r.Cells[tr]["hoho"].P999Bytes
		ucmp := r.Cells[tr]["ucmp"].P999Bytes
		// §Appx A shapes: VLB buffers the most (packets wait at
		// intermediates for up to a cycle); HOHO and UCMP stay low;
		// offloading slashes VLB's on-switch footprint.
		if vlb <= hoho || vlb <= ucmp {
			t.Errorf("%s: VLB (%.0f) should exceed HOHO (%.0f) and UCMP (%.0f)", tr, vlb, hoho, ucmp)
		}
		if off >= vlb/2 {
			t.Errorf("%s: offloading (%.0f) should cut VLB buffer (%.0f) by >= 2x", tr, off, vlb)
		}
		if r.Cells[tr]["vlb+offload"].Parked == 0 {
			t.Errorf("%s: offload never engaged", tr)
		}
		// Everything fits the 64 MB Tofino2 budget.
		for rt, c := range r.Cells[tr] {
			if c.P999Bytes > 64e6 {
				t.Errorf("%s/%s: %.1f MB exceeds the 64 MB buffer", tr, rt, c.P999Bytes/1e6)
			}
		}
	}
	t.Log("\n" + r.String())
}

func TestTable4Shapes(t *testing.T) {
	r, err := Table4(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range r.Traces {
		none := r.Cells[tr]["none"]
		both := r.Cells[tr]["detect+pushback"]
		// Appx B shapes: push-back plus detection eliminates (or nearly
		// eliminates) loss and slashes tail delay.
		if both.LossRate > none.LossRate && none.LossRate > 0 {
			t.Errorf("%s: loss with both (%.3f) should not exceed none (%.3f)",
				tr, both.LossRate, none.LossRate)
		}
		if both.LossRate > 0.002 {
			t.Errorf("%s: loss with push-back = %.4f, want ~0", tr, both.LossRate)
		}
		if none.P95DelayNs > 0 && both.P95DelayNs >= none.P95DelayNs {
			t.Errorf("%s: p95 delay with both (%.0f) should beat none (%.0f)",
				tr, both.P95DelayNs, none.P95DelayNs)
		}
	}
	t.Log("\n" + r.String())
}
