package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/arch"
	"openoptics/internal/stats"
	"openoptics/internal/traffic"
)

// Fig8Result holds the Case I architecture comparison (Fig. 8): mice-flow
// FCT distributions from the Memcached workload and elephant completion
// times from Gloo-style ring allreduce, per architecture.
type Fig8Result struct {
	Arch     []string
	Mice     map[string]*stats.Sample // FCT ns
	Elephant map[string]*stats.Sample // allreduce duration ns
}

// Fig8 implements Case I (§6): six architectures plus RotorNet+UCMP run
// the latency-sensitive and throughput-intensive testbed applications side
// by side on identical hardware shapes.
func Fig8(p Params) (*Fig8Result, error) {
	nodes := p.nodes(8)
	dur := p.dur(150*time.Millisecond, 40*time.Millisecond)
	res := &Fig8Result{
		Mice:     make(map[string]*stats.Sample),
		Elephant: make(map[string]*stats.Sample),
	}
	builders := fig8Architectures(nodes, p.seed())
	for _, b := range builders {
		in, err := b.build()
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", b.name, err)
		}
		mice, eleph, err := runFig8Workloads(in, dur, p)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", b.name, err)
		}
		res.Arch = append(res.Arch, b.name)
		res.Mice[b.name] = mice
		res.Elephant[b.name] = eleph
	}
	return res, nil
}

type archBuilder struct {
	name  string
	build func() (*arch.Instance, error)
}

// fig8Architectures mirrors the Case I lineup.
func fig8Architectures(nodes int, seed uint64) []archBuilder {
	base := arch.Options{Nodes: nodes, HostsPerNode: 1, Seed: seed,
		SliceDurationNs: 100_000}
	return []archBuilder{
		{"clos", func() (*arch.Instance, error) { return arch.Clos(base) }},
		{"c-through", func() (*arch.Instance, error) {
			o := base
			o.Tune = func(c *openoptics.Config) { c.ElephantBytes = 100_000 }
			return arch.CThrough(o)
		}},
		{"jupiter", func() (*arch.Instance, error) {
			o := base
			o.Uplink = 3
			o.ReconfigureEvery = 20 * time.Millisecond
			return arch.Jupiter(o)
		}},
		{"mordia", func() (*arch.Instance, error) {
			o := base
			o.ReconfigureEvery = 20 * time.Millisecond
			return arch.Mordia(o)
		}},
		{"rotornet-vlb", func() (*arch.Instance, error) { return arch.RotorNet(base, arch.SchemeVLB) }},
		{"opera", func() (*arch.Instance, error) {
			o := base
			o.Uplink = 2
			return arch.Opera(o)
		}},
		{"rotornet-ucmp", func() (*arch.Instance, error) { return arch.RotorNet(base, arch.SchemeUCMP) }},
	}
}

// runFig8Workloads drives Memcached (mice) and sequential allreduce
// collectives (elephants) concurrently on the instance.
func runFig8Workloads(in *arch.Instance, dur time.Duration, p Params) (*stats.Sample, *stats.Sample, error) {
	eps := in.Net.Endpoints()
	sink := traffic.NewSink(eps)

	mc := traffic.NewMemcached(in.Net.Engine(), eps[0], eps[1:], p.seed())
	mc.Start(int64(dur))

	eleph := stats.NewSample()
	sizes := []int64{800_000, 4_000_000, 20_000_000}
	if p.Quick {
		sizes = []int64{800_000}
	}
	ar := traffic.NewAllReduce(in.Net.Engine(), eps, sizes[0])
	iter := 0
	ar.OnDone = func(ns int64) {
		eleph.Add(float64(ns))
		if in.Net.Engine().Now() < int64(dur) {
			iter++
			ar.Restart(sizes[iter%len(sizes)])
		}
	}
	ar.Start()

	if err := in.Run(dur + dur/2); err != nil { // tail room for completions
		return nil, nil, err
	}
	return sink.FCTSample(traffic.PortMemcached), eleph, nil
}

func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 8 (a) — Memcached mice-flow FCTs\n")
	for _, a := range r.Arch {
		fmt.Fprintf(&b, "  %s\n", fctRow(a, r.Mice[a]))
	}
	b.WriteString("Fig. 8 (b) — Gloo allreduce completion times\n")
	for _, a := range r.Arch {
		s := r.Elephant[a]
		fmt.Fprintf(&b, "  %-16s n=%-4d mean=%-12s max=%s\n",
			a, s.N(), ms(s.Mean()), ms(s.Max()))
	}
	return b.String()
}
