package experiments

import (
	"fmt"
	"strings"

	"openoptics/internal/controller"
	"openoptics/internal/core"
	"openoptics/internal/routing"
	"openoptics/internal/switchsim"
	"openoptics/internal/topo"
)

// Table2Result holds the Tofino2 resource-usage estimate for an
// OpenOptics-enabled ToR in the 108-ToR network (Table 2).
type Table2Result struct {
	Entries         int
	WildcardEntries int
	Usage           switchsim.ResourceUsage
	Paper           switchsim.ResourceUsage
}

// Table2 compiles the full 108-ToR time-flow table for the observed ToR —
// the Opera-style topology (six uplinks) with UCMP routing, every
// infrastructure service enabled — and runs it through the Tofino2
// resource model.
func Table2(p Params) (*Table2Result, error) {
	nodes := p.nodes(108)
	uplink := 6
	if p.Quick {
		nodes, uplink = 32, 4
	}
	circuits, numSlices, err := topo.RoundRobin(nodes, uplink)
	if err != nil {
		return nil, err
	}
	sched := &core.Schedule{NumSlices: numSlices, SliceDuration: 100_000, Circuits: circuits}
	ix := core.NewConnIndex(sched)
	// Only the observed ToR's entries matter, exactly as the paper
	// populates one representative ToR.
	observed := core.NodeID(0)
	var paths []core.Path
	for dst := core.NodeID(0); int(dst) < nodes; dst++ {
		if dst == observed {
			continue
		}
		for ts := 0; ts < numSlices; ts++ {
			ps := routing.EarliestPaths(ix, observed, dst, core.Slice(ts),
				routing.Options{MaxHop: 2, MaxPaths: 4})
			w := 1.0 / float64(len(ps))
			for i := range ps {
				ps[i].Weight = w
			}
			paths = append(paths, ps...)
		}
	}
	cr, err := controller.CompileRouting(sched, paths, controller.CompileOptions{
		Lookup: core.LookupSource, Multipath: core.MultipathPacket,
	})
	if err != nil {
		return nil, err
	}
	tab := cr.Tables[observed]
	entries, wild := 0, 0
	for _, e := range tab.Entries() {
		if e.Match.Wildcards() > 0 {
			wild++
		} else {
			entries++
		}
	}
	rc := switchsim.ReferenceConfig(entries)
	rc.WildcardEntries = wild
	rc.Uplinks = uplink
	res := &Table2Result{
		Entries:         entries,
		WildcardEntries: wild,
		Usage:           switchsim.EstimateResources(rc),
		Paper: switchsim.ResourceUsage{
			SRAM: 3.8, TCAM: 2.3, StatefulALU: 9.4,
			TernaryXbar: 13.8, VLIW: 5.6, ExactXbar: 7.8,
		},
	}
	return res, nil
}

func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — Tofino2 resource usage (%d exact + %d wildcard entries)\n",
		r.Entries, r.WildcardEntries)
	rows := [][]string{
		{"SRAM", pc(r.Usage.SRAM), pc(r.Paper.SRAM)},
		{"TCAM", pc(r.Usage.TCAM), pc(r.Paper.TCAM)},
		{"Stateful ALU", pc(r.Usage.StatefulALU), pc(r.Paper.StatefulALU)},
		{"Ternary Xbar", pc(r.Usage.TernaryXbar), pc(r.Paper.TernaryXbar)},
		{"VLIW Actions", pc(r.Usage.VLIW), pc(r.Paper.VLIW)},
		{"Exact Xbar", pc(r.Usage.ExactXbar), pc(r.Paper.ExactXbar)},
	}
	b.WriteString(table([]string{"resource", "measured", "paper"}, rows))
	fmt.Fprintf(&b, "max usage %.1f%% (paper: all under 13.8%%)\n", r.Usage.Max())
	return b.String()
}

func pc(v float64) string { return fmt.Sprintf("%.1f%%", v) }
