package experiments

import (
	"fmt"
	"strings"

	"openoptics/internal/syncproto"
)

// MinSliceResult holds the §7 minimum-time-slice derivation, built from
// the measured Fig. 11 rotation variance and Fig. 12 EQO error plus the
// synchronization bound.
type MinSliceResult struct {
	Fig11       *Fig11Result
	Fig12       *Fig12Result
	Budget      syncproto.GuardbandBudget
	PaperBudget syncproto.GuardbandBudget
}

// MinSlice reproduces the minimum circuit duration analysis: guardband =
// rotation variance + EQO error (as time at line rate) + 2× sync error,
// rounded up with headroom; minimum slice = 10× guardband for a ≥90% duty
// cycle. The paper lands at 200 ns guard → 2 µs slices.
func MinSlice(p Params) (*MinSliceResult, error) {
	f11, err := Fig11(p)
	if err != nil {
		return nil, err
	}
	f12, err := Fig12(p)
	if err != nil {
		return nil, err
	}
	// The EQO component uses the mean error: congestion decisions read
	// the register atomically within one packet's processing, so the
	// burst transients our free-running sampler catches between batched
	// enqueues (which dominate the max) are never observable at decision
	// time. The mean matches the paper's "less than one packet" bound.
	eqoErr := int64(f12.Error[50].Mean())
	budget := syncproto.Budget(int64(f11.SpreadNs), eqoErr, 100e9,
		syncproto.ReferenceErrorNs, 52)
	paper := syncproto.Budget(34, 725, 100e9, 28, 52)
	return &MinSliceResult{Fig11: f11, Fig12: f12, Budget: budget, PaperBudget: paper}, nil
}

func (r *MinSliceResult) String() string {
	var b strings.Builder
	b.WriteString("§7 — minimum time slice duration derivation\n")
	rows := [][]string{
		{"queue rotation variance", fmt.Sprintf("%d ns", r.Budget.RotationVarNs), fmt.Sprintf("%d ns", r.PaperBudget.RotationVarNs)},
		{"EQO error @ line rate", fmt.Sprintf("%d ns", r.Budget.EQOErrorNs), fmt.Sprintf("%d ns", r.PaperBudget.EQOErrorNs)},
		{"2 x sync error", fmt.Sprintf("%d ns", r.Budget.SyncNs), fmt.Sprintf("%d ns", r.PaperBudget.SyncNs)},
		{"total", fmt.Sprintf("%d ns", r.Budget.TotalNs), fmt.Sprintf("%d ns", r.PaperBudget.TotalNs)},
		{"guardband (+headroom)", fmt.Sprintf("%d ns", r.Budget.GuardNs), fmt.Sprintf("%d ns", r.PaperBudget.GuardNs)},
		{"minimum slice (x10)", fmt.Sprintf("%d ns", r.Budget.MinSliceNs), fmt.Sprintf("%d ns", r.PaperBudget.MinSliceNs)},
	}
	b.WriteString(table([]string{"component", "measured", "paper"}, rows))
	return b.String()
}
