package experiments

import (
	"testing"
)

func TestFig8Shapes(t *testing.T) {
	r, err := Fig8(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Arch) != 7 {
		t.Fatalf("architectures = %v", r.Arch)
	}
	for _, a := range r.Arch {
		if r.Mice[a].N() < 50 {
			t.Errorf("%s: only %d mice FCTs", a, r.Mice[a].N())
		}
		if r.Elephant[a].N() < 1 {
			t.Errorf("%s: no allreduce completed", a)
		}
	}
	if t.Failed() {
		t.Log(r.String())
		t.FailNow()
	}
	// Headline shapes from §6: RotorNet's VLB has the longest mice tail;
	// UCMP improves on VLB; TO architectures roughly double the elephant
	// completion times of the electrical baseline.
	vlbTail := r.Mice["rotornet-vlb"].Percentile(99)
	closTail := r.Mice["clos"].Percentile(99)
	ucmpTail := r.Mice["rotornet-ucmp"].Percentile(99)
	if vlbTail <= closTail {
		t.Errorf("VLB mice tail (%.0f) should exceed Clos (%.0f)", vlbTail, closTail)
	}
	if ucmpTail >= vlbTail {
		t.Errorf("UCMP mice tail (%.0f) should beat VLB (%.0f)", ucmpTail, vlbTail)
	}
	if r.Elephant["rotornet-vlb"].Mean() <= r.Elephant["clos"].Mean() {
		t.Errorf("TO elephants (%.0f) should be slower than Clos (%.0f)",
			r.Elephant["rotornet-vlb"].Mean(), r.Elephant["clos"].Mean())
	}
	t.Log("\n" + r.String())
}
