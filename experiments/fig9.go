package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/arch"
	"openoptics/internal/core"
	"openoptics/internal/traffic"
)

// Fig9Row is one bar of the Case II study: a network/routing/transport
// combination with its iperf throughput and reordering count.
type Fig9Row struct {
	Name          string
	DupAck        int
	ThroughputBps float64
	ReorderEvents uint64
	Retransmits   uint64
}

// Fig9Result holds the Case II transport-layer investigation (Fig. 9):
// long-lived TCP throughput and packet-reordering events across Clos,
// RotorNet with direct-circuit and VLB routing, and hybrid RotorNet, at
// dupack thresholds 3 and 5.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 implements Case II (§6). The testbed shape follows the paper: each
// ToR has four optical uplinks (so direct circuits are up 50% of the
// time) and the hybrid variant adds a 10 Gbps electrical fabric.
func Fig9(p Params) (*Fig9Result, error) {
	dur := p.dur(60*time.Millisecond, 15*time.Millisecond)
	nodes := p.nodes(8)
	res := &Fig9Result{}
	for _, dup := range []int{3, 5} {
		for _, kind := range []string{"clos", "rotor-direct", "rotor-vlb", "hybrid"} {
			row, err := fig9Run(kind, dup, nodes, dur, p.seed())
			if err != nil {
				return nil, fmt.Errorf("fig9 %s/dup%d: %w", kind, dup, err)
			}
			res.Rows = append(res.Rows, *row)
		}
	}
	// Extension beyond the paper's rows: the TDTCP scenario proper — a
	// slice-determined hybrid whose path capacity alternates between the
	// 100 Gbps circuit (in its slice) and the 10 Gbps electrical fabric
	// (otherwise). Classic TCP's single window chases the alternation;
	// TDTCP keeps one congestion state per slice.
	for _, kind := range []string{"hybrid-slice", "hybrid-slice-tdtcp"} {
		row, err := fig9Run(kind, 3, nodes, dur, p.seed())
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", kind, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func fig9Run(kind string, dupAck, nodes int, dur time.Duration, seed uint64) (*Fig9Row, error) {
	const uplink = 4 // 50% direct-circuit duty at 8 ToRs (ceil(7/4)=2 slices)
	tune := func(c *openoptics.Config) {
		c.DupAckThreshold = dupAck
		c.RTONs = int64(2 * time.Millisecond)
	}
	o := arch.Options{Nodes: nodes, Uplink: uplink, HostsPerNode: 1,
		SliceDurationNs: 100_000, Seed: seed, Tune: tune}

	var in *arch.Instance
	var err error
	switch kind {
	case "clos":
		in, err = arch.Clos(o)
	case "rotor-direct":
		o.Tune = func(c *openoptics.Config) {
			tune(c)
			c.FlowPausing = true // hold flows until their circuit, as §6 does
			c.ElephantBytes = 100_000
		}
		in, err = arch.RotorNet(o, arch.SchemeDirect)
	case "rotor-vlb":
		in, err = arch.RotorNet(o, arch.SchemeVLB)
	case "hybrid":
		// Spray hybrid: 100 Gbps optical direct circuits plus a 10 Gbps
		// electrical fabric, traffic split across both per packet.
		o.Tune = func(c *openoptics.Config) {
			tune(c)
			c.ElectricalGbps = 10
		}
		in, err = arch.RotorNet(o, arch.SchemeDirect)
		if err == nil {
			n := in.Net
			circuits, numSlices, rerr := openoptics.RoundRobin(nodes, uplink)
			if rerr != nil {
				return nil, rerr
			}
			direct := n.Direct(circuits, numSlices, openoptics.RoutingOptions{})
			// Pair each per-slice optical path with an electrical path
			// under the same (src, dst, arrival slice) match so the two
			// compile into one multipath group — packets spray across
			// fabrics, the delay disparity between which provokes the
			// reordering this case study is about. Weights mirror the
			// average capacities (~50 Gbps optical vs 10 Gbps electrical).
			hybrid := make([]core.Path, 0, 2*len(direct))
			for _, d := range direct {
				d.Weight = 5
				hybrid = append(hybrid, d)
				hybrid = append(hybrid, core.Path{
					Src: d.Src, Dst: d.Dst, TS: d.TS, Weight: 1,
					Hops: []core.Hop{{Node: d.Src, Egress: n.ElectricalPort(), DepSlice: d.TS}},
				})
			}
			if err := n.DeployRouting(hybrid, core.LookupHop, core.MultipathPacket); err != nil {
				return nil, err
			}
		}
	case "hybrid-slice", "hybrid-slice-tdtcp":
		// Slice-determined hybrid (the TDTCP scenario): a packet arriving
		// during its destination's circuit slice rides the 100 Gbps
		// circuit; in any other slice it goes out the 10 Gbps electrical
		// fabric immediately. Path capacity alternates with the schedule.
		o.Tune = func(c *openoptics.Config) {
			tune(c)
			c.ElectricalGbps = 10
			if kind == "hybrid-slice-tdtcp" {
				c.TDTCPDivisions = 2 // one congestion state per slice
			}
		}
		in, err = arch.RotorNet(o, arch.SchemeDirect)
		if err == nil {
			n := in.Net
			circuits, numSlices, rerr := openoptics.RoundRobin(nodes, uplink)
			if rerr != nil {
				return nil, rerr
			}
			ix := core.NewConnIndex(&core.Schedule{NumSlices: numSlices,
				SliceDuration: n.Schedule().SliceDuration, Circuits: circuits})
			var paths []core.Path
			for s := core.NodeID(0); int(s) < nodes; s++ {
				for d := core.NodeID(0); int(d) < nodes; d++ {
					if s == d {
						continue
					}
					for ts := 0; ts < numSlices; ts++ {
						arr := core.Slice(ts)
						if eg, ok := ix.EgressPort(s, d, arr); ok {
							paths = append(paths, core.Path{Src: s, Dst: d, TS: arr, Weight: 1,
								Hops: []core.Hop{{Node: s, Egress: eg, DepSlice: arr}}})
						} else {
							paths = append(paths, core.Path{Src: s, Dst: d, TS: arr, Weight: 1,
								Hops: []core.Hop{{Node: s, Egress: n.ElectricalPort(), DepSlice: arr}}})
						}
					}
				}
			}
			if err := n.DeployRouting(paths, core.LookupHop, core.MultipathNone); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown fig9 variant %q", kind)
	}
	if err != nil {
		return nil, err
	}

	eps := in.Net.Endpoints()
	ip := traffic.NewIperf(in.Net.Engine(), [][2]traffic.Endpoint{{eps[0], eps[nodes/2]}})
	if err := in.Run(dur); err != nil {
		return nil, err
	}
	var reorders uint64
	for _, ep := range eps {
		reorders += ep.Stack.ReorderEvents
	}
	return &Fig9Row{
		Name:          kind,
		DupAck:        dupAck,
		ThroughputBps: ip.GoodputBps(),
		ReorderEvents: reorders,
		Retransmits:   ip.Retransmissions(),
	}, nil
}

func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — iperf TCP throughput (a) and reordering events (b)\n")
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, fmt.Sprintf("%d", row.DupAck), gbps(row.ThroughputBps),
			fmt.Sprintf("%d", row.ReorderEvents), fmt.Sprintf("%d", row.Retransmits),
		})
	}
	b.WriteString(table([]string{"network", "dupack", "throughput", "reorders", "retx"}, rows))
	return b.String()
}
