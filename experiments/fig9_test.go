package experiments

import "testing"

func TestFig9Shapes(t *testing.T) {
	r, err := Fig9(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(name string, dup int) Fig9Row {
		for _, row := range r.Rows {
			if row.Name == name && row.DupAck == dup {
				return row
			}
		}
		t.Fatalf("missing row %s/%d", name, dup)
		return Fig9Row{}
	}
	clos := get("clos", 3)
	direct := get("rotor-direct", 3)
	vlb := get("rotor-vlb", 3)
	hybrid3 := get("hybrid", 3)
	hybrid5 := get("hybrid", 5)

	if clos.ThroughputBps <= 0 || direct.ThroughputBps <= 0 {
		t.Fatalf("zero throughput: %+v", r.Rows)
	}
	// §6 shapes: Clos is the upper bound; direct-circuit lands at roughly
	// half of it (50% duty); VLB collapses under reordering; raising the
	// dupack threshold recovers hybrid throughput.
	if direct.ThroughputBps >= clos.ThroughputBps {
		t.Errorf("direct (%.1fG) should be below clos (%.1fG)",
			direct.ThroughputBps/1e9, clos.ThroughputBps/1e9)
	}
	if frac := direct.ThroughputBps / clos.ThroughputBps; frac < 0.25 || frac > 0.75 {
		t.Errorf("direct/clos = %.2f, want ~0.5", frac)
	}
	if vlb.ThroughputBps >= direct.ThroughputBps {
		t.Errorf("VLB (%.1fG) should lag direct (%.1fG) from reordering",
			vlb.ThroughputBps/1e9, direct.ThroughputBps/1e9)
	}
	if vlb.ReorderEvents <= clos.ReorderEvents {
		t.Errorf("VLB reorders (%d) should exceed clos (%d)", vlb.ReorderEvents, clos.ReorderEvents)
	}
	if hybrid5.ThroughputBps <= hybrid3.ThroughputBps {
		t.Errorf("dupack=5 hybrid (%.1fG) should beat dupack=3 (%.1fG)",
			hybrid5.ThroughputBps/1e9, hybrid3.ThroughputBps/1e9)
	}
	if hybrid5.ReorderEvents > hybrid3.ReorderEvents {
		t.Logf("note: hybrid reorders dup5=%d dup3=%d", hybrid5.ReorderEvents, hybrid3.ReorderEvents)
	}
	// Extension: on the slice-determined hybrid, TDTCP's per-division
	// congestion state must beat classic TCP's single window chasing the
	// alternating 100G/10G capacity.
	slice3 := get("hybrid-slice", 3)
	tdtcp := get("hybrid-slice-tdtcp", 3)
	if tdtcp.ThroughputBps <= slice3.ThroughputBps {
		t.Errorf("TDTCP (%.1fG) should beat classic TCP (%.1fG) on the slice hybrid",
			tdtcp.ThroughputBps/1e9, slice3.ThroughputBps/1e9)
	}
	t.Log("\n" + r.String())
}

func TestFig10Shapes(t *testing.T) {
	r, err := Fig10(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// §6 shapes: VLB's tail grows with the slice duration; UCMP is far
	// less sensitive (flat in the middle of the sweep).
	vlbShort := r.FCT["vlb"]["AWGR-2us"].Percentile(99)
	vlbLong := r.FCT["vlb"]["LC-200us"].Percentile(99)
	if vlbLong <= vlbShort {
		t.Errorf("VLB p99 at 200µs (%.0f) should exceed 2µs (%.0f)", vlbLong, vlbShort)
	}
	ucmp100 := r.FCT["ucmp"]["DMD-100us"].Percentile(99)
	ucmp200 := r.FCT["ucmp"]["LC-200us"].Percentile(99)
	vlb200 := r.FCT["vlb"]["LC-200us"].Percentile(99)
	if ucmp200 >= vlb200 {
		t.Errorf("UCMP p99 at 200µs (%.0f) should beat VLB (%.0f)", ucmp200, vlb200)
	}
	// "little difference at 200µs" vs 100µs for UCMP: within 4x.
	if ucmp200 > 4*ucmp100 {
		t.Errorf("UCMP p99 jumped %0.f -> %.0f between 100µs and 200µs", ucmp100, ucmp200)
	}
	for _, scheme := range []string{"vlb", "ucmp"} {
		for _, prof := range r.Profiles {
			if r.FCT[scheme][prof.Name].N() < 30 {
				t.Errorf("%s/%s: only %d samples", scheme, prof.Name, r.FCT[scheme][prof.Name].N())
			}
		}
	}
	t.Log("\n" + r.String())
}
