package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/arch"
	"openoptics/internal/traffic"
)

// Table3Cell is one entry of the buffer-usage study.
type Table3Cell struct {
	P999Bytes float64 // 99.9%-ile of total buffered bytes on the observed ToR
	MaxBytes  float64
	Parked    uint64 // packets offloaded to hosts (VLB offloaded column)
}

// Table3Result holds the switch-buffer study (Table 3): 99.9 %-ile buffer
// usage of the observed ToR under the KV/RPC/Hadoop traces at 300 µs
// slices, for the routing schemes that hold packets at intermediate nodes
// — VLB (with and without buffer offloading), HOHO, and UCMP.
type Table3Result struct {
	Traces   []string
	Routings []string
	Cells    map[string]map[string]Table3Cell // trace -> routing -> cell
}

// Table3 runs the §7 methodology at reduced scale (the paper emulates one
// observed ToR of a 108-ToR network; we simulate a complete smaller
// network, which only makes buffering *harder* per switch).
func Table3(p Params) (*Table3Result, error) {
	nodes := p.nodes(16)
	dur := p.dur(120*time.Millisecond, 20*time.Millisecond)
	if p.Quick && p.Nodes == 0 {
		nodes = 12
	}
	load := 0.4 // 40% core utilization, as in production DCNs (§7)
	res := &Table3Result{
		Traces:   []string{"kv", "rpc", "hadoop"},
		Routings: []string{"vlb", "vlb+offload", "hoho", "ucmp"},
		Cells:    make(map[string]map[string]Table3Cell),
	}
	for _, trace := range res.Traces {
		res.Cells[trace] = make(map[string]Table3Cell)
		for _, rt := range res.Routings {
			cell, err := table3Run(trace, rt, nodes, dur, load, p.seed())
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%s: %w", trace, rt, err)
			}
			res.Cells[trace][rt] = *cell
		}
	}
	return res, nil
}

func table3Run(trace, rt string, nodes int, dur time.Duration, load float64, seed uint64) (*Table3Cell, error) {
	scheme := arch.SchemeVLB
	switch rt {
	case "hoho":
		scheme = arch.SchemeHOHO
	case "ucmp":
		scheme = arch.SchemeUCMP
	}
	// Two uplinks per ToR: HOHO/UCMP find earliest paths within a couple
	// of slices (they prioritize latency), while VLB intermediates hold
	// packets up to the full cycle — the contrast Table 3 shows on the
	// 6-uplink Opera topology.
	o := arch.Options{
		Nodes: nodes, Uplink: 2, HostsPerNode: 1, Seed: seed,
		SliceDurationNs: 300_000, // "considered long for TO architectures"
		Routing:         openoptics.RoutingOptions{MaxHop: 2},
		Tune: func(c *openoptics.Config) {
			if rt == "vlb+offload" {
				c.OffloadRank = 2 // keep two slices of calendars on-switch
			}
			if rt == "hoho" || rt == "ucmp" {
				c.CongestionDetection = true
				c.Response = "defer"
			}
		},
	}
	in, err := arch.RotorNet(o, scheme)
	if err != nil {
		return nil, err
	}
	eps := in.Net.Endpoints()
	cdf, err := traffic.ByName(trace)
	if err != nil {
		return nil, err
	}
	rp, err := traffic.NewReplay(in.Net.Engine(), eps, cdf, load,
		int64(in.Net.Cfg.LineRateGbps*1e9), seed^0x7ab1e3)
	if err != nil {
		return nil, err
	}
	rp.OpenLoop = true // buffer study: no congestion control in the loop
	rp.Start(int64(dur))
	if err := in.Run(dur + 10*time.Millisecond); err != nil {
		return nil, err
	}
	sw := in.Net.Switches()[0]
	var parked uint64
	for _, h := range in.Net.Hosts() {
		parked += h.Counters.Parked
	}
	return &Table3Cell{
		P999Bytes: sw.BufferPercentile(0.999),
		MaxBytes:  float64(sw.MaxBufferUsage()),
		Parked:    parked,
	}, nil
}

func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3 — 99.9%-ile switch buffer usage, 300 µs slices (Tofino2 budget 64 MB)\n")
	rows := make([][]string, 0, len(r.Traces))
	for _, tr := range r.Traces {
		row := []string{tr}
		for _, rt := range r.Routings {
			c := r.Cells[tr][rt]
			row = append(row, fmt.Sprintf("%.2f MB", c.P999Bytes/1e6))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(append([]string{"trace"}, r.Routings...), rows))
	b.WriteString("(paper: VLB 9.5-12.8 MB, offloaded 1.3-1.6 MB, HOHO 2.4-3.9 MB, UCMP 2.4-6.5 MB)\n")
	return b.String()
}
