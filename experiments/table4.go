package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/arch"
	"openoptics/internal/stats"
	"openoptics/internal/traffic"
)

// Table4Cell is one (trace, mechanism) measurement.
type Table4Cell struct {
	ThroughputBps float64
	LossRate      float64
	AvgDelayNs    float64
	P95DelayNs    float64
}

// Table4Result holds the congestion-detection / traffic-push-back
// effectiveness study (Table 4): HOHO at 70 % load, with neither service,
// with congestion detection alone (defer response), and with both.
type Table4Result struct {
	Traces []string
	Modes  []string
	Cells  map[string]map[string]Table4Cell
}

// Table4 stress-tests the calendar queues exactly as Appx. B does.
func Table4(p Params) (*Table4Result, error) {
	nodes := p.nodes(12)
	dur := p.dur(100*time.Millisecond, 20*time.Millisecond)
	res := &Table4Result{
		Traces: []string{"hadoop", "rpc", "kv"},
		Modes:  []string{"none", "detect", "detect+pushback"},
		Cells:  make(map[string]map[string]Table4Cell),
	}
	for _, tr := range res.Traces {
		res.Cells[tr] = make(map[string]Table4Cell)
		for _, mode := range res.Modes {
			cell, err := table4Run(tr, mode, nodes, dur, p.seed())
			if err != nil {
				return nil, fmt.Errorf("table4 %s/%s: %w", tr, mode, err)
			}
			res.Cells[tr][mode] = *cell
		}
	}
	return res, nil
}

func table4Run(trace, mode string, nodes int, dur time.Duration, seed uint64) (*Table4Cell, error) {
	// As many hosts as uplinks per ToR (the paper's Opera shape has six of
	// each): the hot ToR's downlink capacity matches its optical ingress,
	// so the bottleneck under test is the calendar system, not the NIC.
	o := arch.Options{
		Nodes: nodes, Uplink: 2, HostsPerNode: 2, Seed: seed,
		SliceDurationNs: 300_000,
		Routing:         openoptics.RoutingOptions{MaxHop: 2},
		Tune: func(c *openoptics.Config) {
			switch mode {
			case "detect":
				c.CongestionDetection = true
				c.Response = "defer" // HOHO defers slice-missing packets
			case "detect+pushback":
				c.CongestionDetection = true
				c.Response = "defer"
				c.PushBack = true
			}
		},
	}
	in, err := arch.RotorNet(o, arch.SchemeHOHO)
	if err != nil {
		return nil, err
	}
	delay := stats.NewSample()
	for _, sw := range in.Net.Switches() {
		sw.DelaySampler = func(ns int64) { delay.Add(float64(ns)) }
	}
	eps := in.Net.Endpoints()
	cdf, err := traffic.ByName(trace)
	if err != nil {
		return nil, err
	}
	rp, err := traffic.NewReplay(in.Net.Engine(), eps, cdf, 0.7,
		int64(in.Net.Cfg.LineRateGbps*1e9), seed^0x7ab1e4)
	if err != nil {
		return nil, err
	}
	// In-cast a fraction of the flows on one ToR, sized so the hotspot
	// averages ~85% of its optical capacity: bursts overshoot HOHO's
	// earliest slices (the Appx. B failure mode) while the long-run load
	// stays serviceable, so flow control can actually win.
	uplinks := 2.0
	rp.HotFrac = 0.85 * uplinks / (0.7 * float64(nodes-1))
	rp.OpenLoop = true // stress study: open-loop load, per Appx. B
	rp.Start(int64(dur))
	if err := in.Run(dur + 10*time.Millisecond); err != nil {
		return nil, err
	}
	c := in.Net.Counters()
	total := c.TxPkts + c.DropsCongest + c.DropsBuffer + c.DropsWrap
	loss := 0.0
	if total > 0 {
		loss = float64(c.DropsCongest+c.DropsBuffer+c.DropsWrap) / float64(total)
	}
	// Goodput: bytes delivered to hosts over the window.
	var rxBytes uint64
	for _, h := range in.Net.Hosts() {
		rxBytes += h.Counters.RxBytes
	}
	thr := float64(rxBytes) * 8 / (float64(dur) / 1e9)
	return &Table4Cell{
		ThroughputBps: thr,
		LossRate:      loss,
		AvgDelayNs:    delay.Mean(),
		P95DelayNs:    delay.Percentile(95),
	}, nil
}

func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table 4 — congestion detection and traffic push-back with HOHO at 70% load\n")
	for _, tr := range r.Traces {
		fmt.Fprintf(&b, "[%s]\n", tr)
		rows := make([][]string, 0, len(r.Modes))
		for _, mode := range r.Modes {
			c := r.Cells[tr][mode]
			rows = append(rows, []string{
				mode, gbps(c.ThroughputBps),
				fmt.Sprintf("%.2f%%", c.LossRate*100),
				us(c.AvgDelayNs), us(c.P95DelayNs),
			})
		}
		b.WriteString(table([]string{"mechanisms", "throughput", "loss", "avg delay", "p95 delay"}, rows))
	}
	b.WriteString("(paper: both mechanisms together eliminate loss and cut p95 delay ~20x)\n")
	return b.String()
}
