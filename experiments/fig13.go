package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/arch"
	"openoptics/internal/stats"
	"openoptics/internal/traffic"
)

// Fig13Result holds the emulation-accuracy validation (Fig. 13): the UDP
// RTT distribution between one host pair on the RotorNet schedule, whose
// stepped CDF — one plateau per extra routing hop/wait — must match the
// behaviour "Realizing RotorNet" measured on real OCS hardware, minus that
// system's kernel-stack tail.
type Fig13Result struct {
	RTT      *stats.Sample
	CDF      []stats.CDFPoint
	Plateaus int
}

// Fig13 replicates the UDP RTT experiment: continuous probes between two
// hosts on RotorNet with VLB routing. Correctness signal: the CDF rises in
// discrete steps tied to the optical schedule, not smoothly.
func Fig13(p Params) (*Fig13Result, error) {
	dur := p.dur(80*time.Millisecond, 25*time.Millisecond)
	o := arch.Options{Nodes: p.nodes(8), HostsPerNode: 1, Seed: p.seed(),
		SliceDurationNs: 100_000,
		Tune: func(c *openoptics.Config) {
			c.SyncErrorNs = 28 // the deployment bound, for realism
		},
	}
	in, err := arch.RotorNet(o, arch.SchemeVLB)
	if err != nil {
		return nil, err
	}
	eps := in.Net.Endpoints()
	sink := traffic.NewSink(eps)
	probe := traffic.NewUDPProbe(in.Net.Engine(), eps[0], eps[5])
	probe.IntervalNs = 20_000
	probe.Payload = 1024
	probe.Start(int64(dur))
	if err := in.Run(dur + 10*time.Millisecond); err != nil {
		return nil, err
	}
	if sink.RTT.N() < 100 {
		return nil, fmt.Errorf("fig13: only %d RTTs", sink.RTT.N())
	}
	res := &Fig13Result{RTT: sink.RTT, CDF: sink.RTT.CDF(100)}
	res.Plateaus = countPlateaus(res.CDF)
	return res, nil
}

// countPlateaus detects the stepped structure: distinct RTT clusters
// separated by gaps larger than a quarter slice.
func countPlateaus(cdf []stats.CDFPoint) int {
	vals := make([]float64, 0, len(cdf))
	for _, p := range cdf {
		vals = append(vals, p.V)
	}
	sort.Float64s(vals)
	const gap = 25_000 // ns, quarter of the 100 µs slice
	plateaus := 1
	for i := 1; i < len(vals); i++ {
		if vals[i]-vals[i-1] > gap {
			plateaus++
		}
	}
	return plateaus
}

func (r *Fig13Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 13 — UDP RTT distribution on RotorNet (emulated fabric)\n")
	fmt.Fprintf(&b, "  %s\n", fctRow("udp-rtt", r.RTT))
	fmt.Fprintf(&b, "  CDF steps (hop plateaus): %d\n", r.Plateaus)
	b.WriteString("  CDF (P -> RTT):")
	for i, pt := range r.CDF {
		if i%10 == 0 {
			fmt.Fprintf(&b, "\n   ")
		}
		fmt.Fprintf(&b, " %.2f:%s", pt.P, us(pt.V))
	}
	b.WriteString("\n(paper: stepped RTT increases per extra hop; OpenOptics curve has no kernel-stack long tail)\n")
	return b.String()
}
