package experiments

import "testing"

// TestParamsSeed pins the seed-selection contract: an unset seed defaults
// to 42, a nonzero seed is honored, and — with SeedSet — zero is a real,
// requestable seed instead of a silent alias for the default.
func TestParamsSeed(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		want uint64
	}{
		{"default", Params{}, 42},
		{"explicit", Params{Seed: 7}, 7},
		{"explicit-default", Params{Seed: 42, SeedSet: true}, 42},
		{"zero-requested", Params{Seed: 0, SeedSet: true}, 0},
	}
	for _, c := range cases {
		if got := c.p.seed(); got != c.want {
			t.Errorf("%s: seed() = %d, want %d", c.name, got, c.want)
		}
	}
}
