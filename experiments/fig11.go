package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/core"
	"openoptics/internal/stats"
)

// Fig11Result holds the switch-to-switch delay measurement (Fig. 11):
// per-packet-size delay from the queue-rotation TX trigger on the sender
// ToR to Rx MAC arrival on the receiver, through the optical fabric. The
// max−min spread across sizes is the queue-rotation variance the §7
// guardband must absorb.
type Fig11Result struct {
	Sizes    []int32
	Delay    map[int32]*stats.Sample // ns per size
	MinNs    float64
	MaxNs    float64
	SpreadNs float64
}

// Fig11 measures the delay with the paper's method: line-rate generator
// probes from the observed ToR through the fabric back to a peer ToR,
// timestamped on the same clock, on the testbed's 400 Gbps ToR links.
func Fig11(p Params) (*Fig11Result, error) {
	dur := p.dur(4*time.Millisecond, time.Millisecond)
	cfg := openoptics.Config{
		NodeNum:         2,
		Uplink:          1,
		SliceDurationNs: 100_000,
		LineRateGbps:    400, // testbed ToR-fabric links
		Seed:            p.seed(),
	}
	n, err := openoptics.New(cfg)
	if err != nil {
		return nil, err
	}
	circuits := []core.Circuit{openoptics.Connect(0, 0, 1, 0, core.WildcardSlice)}
	if err := n.DeployTopo(circuits, 1); err != nil {
		return nil, err
	}
	paths := n.Direct(circuits, 1, openoptics.RoutingOptions{})
	if err := n.DeployRouting(paths, core.LookupHop, core.MultipathNone); err != nil {
		return nil, err
	}

	res := &Fig11Result{
		Sizes: []int32{64, 128, 256, 512, 1024, 1500},
		Delay: make(map[int32]*stats.Sample),
	}
	for _, sz := range res.Sizes {
		res.Delay[sz] = stats.NewSample()
	}
	// The receiving ToR samples the wire delay of every arriving packet.
	bySize := make(map[uint64]int32)
	var nextID uint64
	n.Switches()[1].WireDelaySampler = func(ns int64, size int32) {
		if s, ok := res.Delay[size]; ok {
			s.Add(float64(ns))
		}
	}
	_ = bySize
	_ = nextID

	// On-chip generator: inject probes of each size directly at the
	// sender ToR's ingress, as the paper's pktgen does.
	sw := n.Switches()[0]
	eng := n.Engine()
	i := 0
	eng.Every(1000, 2000, func() bool {
		if eng.Now() > int64(dur) {
			return false
		}
		sz := res.Sizes[i%len(res.Sizes)]
		i++
		pkt := n.PacketPool().NewPacket(core.Packet{
			ID:      uint64(i),
			Flow:    core.FlowKey{SrcHost: 0, DstHost: 1, SrcPort: 1, DstPort: 2, Proto: core.ProtoUDP},
			SrcNode: 0, DstNode: 1,
			Size: sz, Payload: sz - core.HeaderBytes,
			Created: eng.Now(),
			TTL:     core.DefaultTTL,
		})
		sw.Receive(pkt, core.PortID(cfg.Uplink)) // arrives on a downlink-side port
		return true
	})
	n.Run(dur + time.Millisecond)

	res.MinNs = 1 << 62
	for _, sz := range res.Sizes {
		s := res.Delay[sz]
		if s.N() == 0 {
			return nil, fmt.Errorf("fig11: no samples for size %d", sz)
		}
		if s.Min() < res.MinNs {
			res.MinNs = s.Min()
		}
		if s.Max() > res.MaxNs {
			res.MaxNs = s.Max()
		}
	}
	res.SpreadNs = res.MaxNs - res.MinNs
	return res, nil
}

func (r *Fig11Result) String() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — switch-to-switch delay vs packet size\n")
	rows := make([][]string, 0, len(r.Sizes))
	for _, sz := range r.Sizes {
		s := r.Delay[sz]
		rows = append(rows, []string{
			fmt.Sprintf("%d B", sz), fmt.Sprintf("%d", s.N()),
			fmt.Sprintf("%.0f ns", s.Min()), fmt.Sprintf("%.0f ns", s.Percentile(50)),
			fmt.Sprintf("%.0f ns", s.Max()),
		})
	}
	b.WriteString(table([]string{"size", "n", "min", "p50", "max"}, rows))
	fmt.Fprintf(&b, "min=%.0f ns max=%.0f ns rotation variance=%.0f ns (paper: 1287/1324/34)\n",
		r.MinNs, r.MaxNs, r.SpreadNs)
	return b.String()
}
