package experiments

import "testing"

func TestFig11Shapes(t *testing.T) {
	r, err := Fig11(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The delay band must be narrow (cut-through) and on the order of a
	// microsecond; the spread across packet sizes is the guardband's
	// rotation-variance component and must stay well under 100 ns at
	// 400 Gbps (the paper measures 34 ns).
	if r.MinNs < 300 || r.MinNs > 5000 {
		t.Errorf("min delay %.0f ns outside the plausible band", r.MinNs)
	}
	if r.SpreadNs <= 0 || r.SpreadNs > 100 {
		t.Errorf("rotation variance %.0f ns, want (0, 100]", r.SpreadNs)
	}
	// Delay must be monotone-ish in size: the largest packet is the
	// slowest (one full serialization in the path).
	if r.Delay[1500].Min() <= r.Delay[64].Min() {
		t.Errorf("1500 B (%.0f) should be slower than 64 B (%.0f)",
			r.Delay[1500].Min(), r.Delay[64].Min())
	}
	t.Log("\n" + r.String())
}

func TestFig12Shapes(t *testing.T) {
	r, err := Fig12(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Error grows with the update interval, and at 50 ns the mean stays
	// under one MTU packet (paper: <=725 B max; our sampler also sees
	// burst transients, so the mean is the stable comparand).
	e50 := r.Error[50].Mean()
	e800 := r.Error[800].Mean()
	if e50 > 1500 {
		t.Errorf("50 ns mean error %.0f B exceeds one MTU", e50)
	}
	if e800 < e50 {
		t.Errorf("error should grow with interval: 800ns %.0f < 50ns %.0f", e800, e50)
	}
	t.Log("\n" + r.String())
}

func TestFig13Shapes(t *testing.T) {
	r, err := Fig13(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The CDF must be stepped (≥2 plateaus: direct-wait and via-hop
	// bands), and the max RTT bounded by a few optical cycles (no
	// kernel-style long tail).
	if r.Plateaus < 2 {
		t.Errorf("plateaus = %d, want >= 2 (stepped CDF)", r.Plateaus)
	}
	cycle := 7 * 100_000.0
	if r.RTT.Max() > 4*cycle {
		t.Errorf("max RTT %.0f ns beyond 4 cycles — unexpected long tail", r.RTT.Max())
	}
	t.Log("\n" + r.String())
}

func TestFig14Shapes(t *testing.T) {
	r, err := Fig14(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The userspace stack keeps offload returns tight; the kernel
	// baseline is markedly worse (paper: 0.75 µs vs tens of µs).
	vmaRange := r.VMA.Max() - r.VMA.Min()
	kernRange := r.Kernel.Max() - r.Kernel.Min()
	if kernRange < 4*vmaRange {
		t.Errorf("kernel range %.0f ns should dwarf vma range %.0f ns", kernRange, vmaRange)
	}
	if dev := r.VMADev.Percentile(95); dev > 2_000 {
		t.Errorf("vma interval deviation p95 = %.0f ns, want <= 2 µs", dev)
	}
	t.Log("\n" + r.String())
}

func TestTable2Shapes(t *testing.T) {
	r, err := Table2(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Entries < 1000 {
		t.Errorf("only %d entries for the 108-ToR table", r.Entries)
	}
	// Everything must stay within the headroom claim and the same order
	// of magnitude as Table 2.
	if r.Usage.Max() > 20 {
		t.Errorf("max resource usage %.1f%%, want <= 20%%", r.Usage.Max())
	}
	for name, pair := range map[string][2]float64{
		"sram": {r.Usage.SRAM, 3.8}, "tcam": {r.Usage.TCAM, 2.3},
		"salu": {r.Usage.StatefulALU, 9.4}, "tern": {r.Usage.TernaryXbar, 13.8},
		"vliw": {r.Usage.VLIW, 5.6}, "exact": {r.Usage.ExactXbar, 7.8},
	} {
		got, want := pair[0], pair[1]
		if got < want/4 || got > want*4 {
			t.Errorf("%s = %.1f%%, paper %.1f%% (want within 4x)", name, got, want)
		}
	}
	t.Log("\n" + r.String())
}

func TestMinSliceShapes(t *testing.T) {
	r, err := MinSlice(Params{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The measured budget must land in the same regime as the paper's:
	// guardband of a few hundred ns, minimum slice of a few µs.
	if r.Budget.GuardNs < 100 || r.Budget.GuardNs > 1000 {
		t.Errorf("guardband %d ns outside [100, 1000]", r.Budget.GuardNs)
	}
	if r.Budget.MinSliceNs < 1000 || r.Budget.MinSliceNs > 10_000 {
		t.Errorf("min slice %d ns outside [1µs, 10µs]", r.Budget.MinSliceNs)
	}
	t.Log("\n" + r.String())
}
