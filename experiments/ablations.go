package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics"
	"openoptics/internal/arch"
	"openoptics/internal/controller"
	"openoptics/internal/core"
	"openoptics/internal/stats"
	"openoptics/internal/traffic"
)

// This file holds the ablation studies DESIGN.md calls out: design knobs
// the paper fixes that we sweep to show why its choices hold.

// AblationGuardbandResult sweeps the guardband against loss and goodput:
// too small loses packets at slice edges, too large wastes duty cycle.
type AblationGuardbandResult struct {
	GuardNs   []int64
	Loss      map[int64]float64
	FCTp99    map[int64]float64
	Fallbacks map[int64]uint64 // boundary misroutes recovered in-network
	// GoodputBps of a long direct-routed flow: the duty-cycle cost made
	// visible — every ns of guard is a ns the circuit cannot carry data.
	GoodputBps map[int64]float64
}

// AblationGuardband runs RotorNet with direct-circuit routing across
// guardbands: direct routing exposes the duty-cycle cost (every guard ns
// is circuit time lost) without VLB's transport noise.
func AblationGuardband(p Params) (*AblationGuardbandResult, error) {
	dur := p.dur(60*time.Millisecond, 20*time.Millisecond)
	res := &AblationGuardbandResult{
		GuardNs:    []int64{0, 200, 2_000, 20_000},
		Loss:       make(map[int64]float64),
		FCTp99:     make(map[int64]float64),
		Fallbacks:  make(map[int64]uint64),
		GoodputBps: make(map[int64]float64),
	}
	for _, g := range res.GuardNs {
		g := g
		o := arch.Options{Nodes: 8, HostsPerNode: 1, Seed: p.seed(),
			SliceDurationNs: 100_000,
			Tune: func(c *openoptics.Config) {
				c.GuardNs = g
				c.SyncErrorNs = 28 // the hazard a guardband absorbs
				c.FlowPausing = true
				c.ElephantBytes = 100_000
			}}
		in, err := arch.RotorNet(o, arch.SchemeDirect)
		if err != nil {
			return nil, err
		}
		eps := in.Net.Endpoints()
		sink := traffic.NewSink(eps)
		mc := traffic.NewMemcached(in.Net.Engine(), eps[0], eps[1:], p.seed())
		mc.Start(int64(dur))
		ip := traffic.NewIperf(in.Net.Engine(), [][2]traffic.Endpoint{{eps[2], eps[6]}})
		if err := in.Run(dur + dur/2); err != nil {
			return nil, err
		}
		res.GoodputBps[g] = ip.GoodputBps()
		fab := in.Net.OpticalFabric()
		total := fab.Forwarded + fab.DropsGuard + fab.DropsNoCircuit
		loss := 0.0
		if total > 0 {
			loss = float64(fab.DropsGuard+fab.DropsNoCircuit) / float64(total)
		}
		res.Loss[g] = loss
		res.FCTp99[g] = sink.FCTSample(traffic.PortMemcached).Percentile(99)
		res.Fallbacks[g] = in.Net.Counters().Fallbacks
	}
	return res, nil
}

func (r *AblationGuardbandResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — guardband vs boundary hazards (28 ns sync error) and duty cost\n")
	rows := make([][]string, 0, len(r.GuardNs))
	for _, g := range r.GuardNs {
		rows = append(rows, []string{
			fmt.Sprintf("%d ns", g),
			fmt.Sprintf("%.3f%%", r.Loss[g]*100),
			fmt.Sprintf("%d", r.Fallbacks[g]),
			ms(r.FCTp99[g]),
			gbps(r.GoodputBps[g]),
		})
	}
	b.WriteString(table([]string{"guard", "fabric loss", "misroutes", "mice p99", "iperf goodput"}, rows))
	return b.String()
}

// AblationLookupResult compares per-hop lookup vs source routing on the
// same UCMP path set: table entries installed and delivered FCTs.
type AblationLookupResult struct {
	Modes   []string
	Entries map[string]int
	FCTp99  map[string]float64
}

// AblationLookup quantifies the LOOKUP deploy option trade-off: source
// routing concentrates state at sources (fewer nodes touched, bigger
// packets); per-hop lookup spreads entries across the fabric.
func AblationLookup(p Params) (*AblationLookupResult, error) {
	dur := p.dur(60*time.Millisecond, 20*time.Millisecond)
	res := &AblationLookupResult{
		Modes:   []string{"hop", "source"},
		Entries: make(map[string]int),
		FCTp99:  make(map[string]float64),
	}
	for _, mode := range res.Modes {
		lookup := core.LookupHop
		if mode == "source" {
			lookup = core.LookupSource
		}
		cfg := openoptics.Config{NodeNum: 8, Uplink: 1, SliceDurationNs: 100_000, Seed: p.seed()}
		n, err := openoptics.New(cfg)
		if err != nil {
			return nil, err
		}
		circuits, numSlices, err := openoptics.RoundRobin(8, 1)
		if err != nil {
			return nil, err
		}
		if err := n.DeployTopo(circuits, numSlices); err != nil {
			return nil, err
		}
		paths := n.UCMP(circuits, numSlices, openoptics.RoutingOptions{MaxHop: 2, MaxPaths: 4})
		if err := n.DeployRouting(paths, lookup, core.MultipathPacket); err != nil {
			return nil, err
		}
		entries := 0
		for _, sw := range n.Switches() {
			entries += sw.Table().Len()
		}
		res.Entries[mode] = entries
		eps := n.Endpoints()
		sink := traffic.NewSink(eps)
		mc := traffic.NewMemcached(n.Engine(), eps[0], eps[1:], p.seed())
		mc.Start(int64(dur))
		n.Run(dur + dur/2)
		res.FCTp99[mode] = sink.FCTSample(traffic.PortMemcached).Percentile(99)
	}
	return res, nil
}

func (r *AblationLookupResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — LOOKUP mode: per-hop vs source routing (UCMP)\n")
	rows := make([][]string, 0, 2)
	for _, m := range r.Modes {
		rows = append(rows, []string{m, fmt.Sprintf("%d", r.Entries[m]), ms(r.FCTp99[m])})
	}
	b.WriteString(table([]string{"lookup", "entries", "mice p99"}, rows))
	return b.String()
}

// AblationMultipathResult compares packet- vs flow-level multipath on VLB:
// reordering and throughput.
type AblationMultipathResult struct {
	Modes    []string
	Reorders map[string]uint64
	Goodput  map[string]float64
	FCTp99   map[string]float64
}

// AblationMultipath quantifies the MULTIPATH deploy option: packet-level
// spraying balances load but reorders; flow-level hashing keeps order but
// can hotspot.
func AblationMultipath(p Params) (*AblationMultipathResult, error) {
	dur := p.dur(40*time.Millisecond, 15*time.Millisecond)
	res := &AblationMultipathResult{
		Modes:    []string{"packet", "flow"},
		Reorders: make(map[string]uint64),
		Goodput:  make(map[string]float64),
		FCTp99:   make(map[string]float64),
	}
	for _, mode := range res.Modes {
		mp := core.MultipathPacket
		if mode == "flow" {
			mp = core.MultipathFlow
		}
		cfg := openoptics.Config{NodeNum: 8, Uplink: 4, SliceDurationNs: 100_000, Seed: p.seed()}
		n, err := openoptics.New(cfg)
		if err != nil {
			return nil, err
		}
		circuits, numSlices, err := openoptics.RoundRobin(8, 4)
		if err != nil {
			return nil, err
		}
		if err := n.DeployTopo(circuits, numSlices); err != nil {
			return nil, err
		}
		paths := n.VLB(circuits, numSlices, openoptics.RoutingOptions{})
		if err := n.DeployRouting(paths, core.LookupHop, mp); err != nil {
			return nil, err
		}
		eps := n.Endpoints()
		sink := traffic.NewSink(eps)
		ip := traffic.NewIperf(n.Engine(), [][2]traffic.Endpoint{{eps[0], eps[4]}})
		mc := traffic.NewMemcached(n.Engine(), eps[1], []traffic.Endpoint{eps[2], eps[3]}, p.seed())
		mc.Start(int64(dur))
		n.Run(dur)
		var reorders uint64
		for _, ep := range eps {
			reorders += ep.Stack.ReorderEvents
		}
		res.Reorders[mode] = reorders
		res.Goodput[mode] = ip.GoodputBps()
		res.FCTp99[mode] = sink.FCTSample(traffic.PortMemcached).Percentile(99)
	}
	return res, nil
}

func (r *AblationMultipathResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — MULTIPATH mode: packet vs flow hashing (VLB)\n")
	rows := make([][]string, 0, 2)
	for _, m := range r.Modes {
		rows = append(rows, []string{m, fmt.Sprintf("%d", r.Reorders[m]),
			gbps(r.Goodput[m]), ms(r.FCTp99[m])})
	}
	b.WriteString(table([]string{"multipath", "reorders", "iperf goodput", "mice p99"}, rows))
	return b.String()
}

// AblationQueueCountResult sweeps the calendar depth against wrap drops.
type AblationQueueCountResult struct {
	Queues []int
	Wraps  map[int]uint64
	Misses map[int]uint64
	FCTp99 map[int]float64
}

// AblationQueueCount shrinks the per-port calendar below the cycle length
// so far-future ranks cannot be enqueued — the regime buffer offloading
// exists for.
func AblationQueueCount(p Params) (*AblationQueueCountResult, error) {
	dur := p.dur(60*time.Millisecond, 20*time.Millisecond)
	res := &AblationQueueCountResult{
		Queues: []int{2, 4, 8, 32},
		Wraps:  make(map[int]uint64),
		Misses: make(map[int]uint64),
		FCTp99: make(map[int]float64),
	}
	for _, q := range res.Queues {
		q := q
		o := arch.Options{Nodes: 8, HostsPerNode: 1, Seed: p.seed(),
			SliceDurationNs: 100_000,
			Tune:            func(c *openoptics.Config) { c.CalendarQueues = q }}
		in, err := arch.RotorNet(o, arch.SchemeVLB)
		if err != nil {
			return nil, err
		}
		eps := in.Net.Endpoints()
		sink := traffic.NewSink(eps)
		mc := traffic.NewMemcached(in.Net.Engine(), eps[0], eps[1:], p.seed())
		mc.Start(int64(dur))
		if err := in.Run(dur + dur/2); err != nil {
			return nil, err
		}
		c := in.Net.Counters()
		res.Wraps[q] = c.DropsWrap
		res.Misses[q] = c.SliceMisses
		res.FCTp99[q] = sink.FCTSample(traffic.PortMemcached).Percentile(99)
	}
	return res, nil
}

func (r *AblationQueueCountResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — calendar depth vs wrap drops (RotorNet VLB, 7-slice cycle)\n")
	rows := make([][]string, 0, len(r.Queues))
	for _, q := range r.Queues {
		rows = append(rows, []string{fmt.Sprintf("%d", q),
			fmt.Sprintf("%d", r.Wraps[q]), fmt.Sprintf("%d", r.Misses[q]), ms(r.FCTp99[q])})
	}
	b.WriteString(table([]string{"queues", "wrap drops", "slice misses", "mice p99"}, rows))
	return b.String()
}

// AblationEQOResult compares EQO-based congestion detection against an
// oracle with perfect queue knowledge, isolating the estimation cost.
type AblationEQOResult struct {
	Modes  []string
	Loss   map[string]float64
	Defers map[string]uint64
}

// AblationEQO runs HOHO under stress with estimated vs oracle occupancy.
func AblationEQO(p Params) (*AblationEQOResult, error) {
	dur := p.dur(50*time.Millisecond, 20*time.Millisecond)
	res := &AblationEQOResult{
		Modes:  []string{"eqo-50ns", "oracle"},
		Loss:   make(map[string]float64),
		Defers: make(map[string]uint64),
	}
	for _, mode := range res.Modes {
		mode := mode
		o := arch.Options{Nodes: 8, Uplink: 2, HostsPerNode: 2, Seed: p.seed(),
			SliceDurationNs: 300_000,
			Routing:         openoptics.RoutingOptions{MaxHop: 2},
			Tune: func(c *openoptics.Config) {
				c.CongestionDetection = true
				c.Response = "defer"
				if mode == "oracle" {
					c.EQOIntervalNs = -1 // perfect ingress knowledge
				}
			}}
		in, err := arch.RotorNet(o, arch.SchemeHOHO)
		if err != nil {
			return nil, err
		}
		eps := in.Net.Endpoints()
		rp, err := traffic.NewReplay(in.Net.Engine(), eps, traffic.Hadoop(), 0.7,
			int64(in.Net.Cfg.LineRateGbps*1e9), p.seed()^0xab1a)
		if err != nil {
			return nil, err
		}
		// The Table 4 in-cast stress, sized to ~90% of the hot ToR.
		rp.HotFrac = 0.9 * 2 / (0.7 * float64(8-1))
		rp.OpenLoop = true
		rp.Start(int64(dur))
		if err := in.Run(dur + 5*time.Millisecond); err != nil {
			return nil, err
		}
		c := in.Net.Counters()
		total := c.TxPkts + c.DropsCongest + c.DropsBuffer
		if total > 0 {
			res.Loss[mode] = float64(c.DropsCongest+c.DropsBuffer) / float64(total)
		}
		res.Defers[mode] = c.Defers
	}
	return res, nil
}

func (r *AblationEQOResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation — EQO estimation vs oracle occupancy (HOHO, 70% load)\n")
	rows := make([][]string, 0, 2)
	for _, m := range r.Modes {
		rows = append(rows, []string{m, fmt.Sprintf("%.3f%%", r.Loss[m]*100),
			fmt.Sprintf("%d", r.Defers[m])})
	}
	b.WriteString(table([]string{"occupancy", "loss", "defers"}, rows))
	return b.String()
}

// compile-time interface checks keeping the imports honest.
var _ = controller.CompileOptions{}
var _ = stats.NewSample
