// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6–§7). Every driver is deterministic given its
// parameters, returns a typed result with a String() that prints the same
// rows/series the paper reports, and is wrapped by a testing.B benchmark
// in the repository root and by the cmd/oobench CLI.
//
// Absolute numbers differ from the paper — the substrate here is a
// simulator, not a Tofino2 testbed — but the shapes (who wins, by what
// factor, where crossovers fall) are the reproduction targets, recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"openoptics/internal/stats"
)

// Params scales an experiment run.
type Params struct {
	// Duration is the measured window of virtual time. Zero selects each
	// experiment's default.
	Duration time.Duration
	// Nodes overrides the endpoint count where meaningful.
	Nodes int
	// Seed fixes the run. The zero value selects the default seed (42)
	// unless SeedSet marks it as an explicit request for seed 0.
	Seed uint64
	// SeedSet marks Seed as explicitly chosen, making seed 0 expressible
	// (without it, zero is a sentinel and silently became 42).
	SeedSet bool
	// Quick shrinks scale for unit-test budgets.
	Quick bool
}

func (p Params) seed() uint64 {
	if p.Seed == 0 && !p.SeedSet {
		return 42
	}
	return p.Seed
}

func (p Params) dur(def, quick time.Duration) time.Duration {
	if p.Duration > 0 {
		return p.Duration
	}
	if p.Quick {
		return quick
	}
	return def
}

func (p Params) nodes(def int) int {
	if p.Nodes > 0 {
		return p.Nodes
	}
	return def
}

// ms formats nanoseconds as milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%.3f ms", ns/1e6) }

// us formats nanoseconds as microseconds.
func us(ns float64) string { return fmt.Sprintf("%.1f µs", ns/1e3) }

// gbps formats bits/s as Gbps.
func gbps(bps float64) string { return fmt.Sprintf("%.1f Gbps", bps/1e9) }

// fctRow renders the canonical FCT row.
func fctRow(name string, s *stats.Sample) string {
	return fmt.Sprintf("%-16s n=%-6d p50=%-12s p95=%-12s p99=%-12s max=%s",
		name, s.N(), ms(s.Percentile(50)), ms(s.Percentile(95)), ms(s.Percentile(99)), ms(s.Max()))
}

// table renders aligned columns.
func table(header []string, rows [][]string) string {
	w := make([]int, len(header))
	for i, h := range header {
		w[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", w[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
