package openoptics

import (
	"testing"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/traffic"
)

// rotorNet4 builds a small RotorNet: 4 nodes, 1 uplink, 1 host each,
// 100 µs slices, VLB routing with per-packet spraying — the Fig. 5 (a)
// program in miniature.
func rotorNet4(t *testing.T, mutate func(*Config)) *Net {
	t.Helper()
	cfg := Config{
		Node:            "rack",
		NodeNum:         4,
		Uplink:          1,
		HostsPerNode:    1,
		SliceDurationNs: 100_000,
		Seed:            7,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	circuits, numSlices, err := RoundRobin(cfg.NodeNum, cfg.Uplink)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployTopo(circuits, numSlices); err != nil {
		t.Fatal(err)
	}
	paths := n.VLB(circuits, numSlices, RoutingOptions{})
	if err := n.DeployRouting(paths, LookupHop, MultipathPacket); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEndToEndUDPDelivery(t *testing.T) {
	n := rotorNet4(t, nil)
	eps := n.Endpoints()
	sink := traffic.NewSink(eps)
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[3])
	probe.IntervalNs = 50_000
	probe.Start(int64(20 * time.Millisecond))
	n.Run(25 * time.Millisecond)

	if sink.RTT.N() == 0 {
		t.Fatalf("no RTTs measured; sent=%d counters=%+v fabricDrops=%d/%d",
			probe.Sent, n.Counters(), n.OpticalFabric().DropsGuard, n.OpticalFabric().DropsNoCircuit)
	}
	// Round trips must complete within a few optical cycles (cycle =
	// 300 µs here, VLB waits at most ~1 cycle per direction).
	if max := sink.RTT.Max(); max > float64(4*300_000) {
		t.Fatalf("max RTT %.0f ns exceeds 4 cycles", max)
	}
	if sink.RTT.Min() <= 0 {
		t.Fatal("non-positive RTT")
	}
	// The vast majority of probes must return.
	if got := uint64(sink.RTT.N()); got*10 < probe.Sent*9 {
		t.Fatalf("only %d of %d probes returned", got, probe.Sent)
	}
}

func TestEndToEndTCPFlow(t *testing.T) {
	n := rotorNet4(t, nil)
	eps := n.Endpoints()
	sink := traffic.NewSink(eps)
	flow := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[2].Host,
		SrcPort: 1234, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	conn := eps[0].Stack.OpenTCP(flow, eps[0].Node, eps[2].Node, 200_000)
	n.Run(100 * time.Millisecond)
	if !conn.Done() {
		t.Fatalf("flow incomplete: acked=%d of 200000; counters=%+v", conn.Acked(), n.Counters())
	}
	fcts := sink.FCTSample(traffic.PortReplay)
	if fcts.N() != 1 {
		t.Fatalf("FCT samples = %d", fcts.N())
	}
	if fcts.Max() <= 0 || fcts.Max() > float64(int64(100*time.Millisecond)) {
		t.Fatalf("implausible FCT %.0f", fcts.Max())
	}
}

func TestEndToEndNoRouteDrops(t *testing.T) {
	// Deploy topo but not routing: packets must be counted as no-route.
	cfg := Config{NodeNum: 4, Uplink: 1, SliceDurationNs: 100_000, Seed: 7}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	circuits, numSlices, err := RoundRobin(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployTopo(circuits, numSlices); err != nil {
		t.Fatal(err)
	}
	eps := n.Endpoints()
	flow := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[2].Host,
		SrcPort: 1, DstPort: 2, Proto: core.ProtoUDP}
	eps[0].Stack.SendUDP(flow, eps[0].Node, eps[2].Node, 100, false)
	n.Run(5 * time.Millisecond)
	if n.Counters().DropsNoRoute == 0 {
		t.Fatal("expected no-route drops without routing deployed")
	}
}

func TestEndToEndClosBaseline(t *testing.T) {
	// Pure electrical network: no optical circuits at all.
	cfg := Config{NodeNum: 4, Uplink: 1, ElectricalGbps: 100, Seed: 7}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := n.ElectricalPaths()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployRouting(paths, LookupHop, MultipathNone); err != nil {
		t.Fatal(err)
	}
	eps := n.Endpoints()
	sink := traffic.NewSink(eps)
	flow := core.FlowKey{SrcHost: eps[1].Host, DstHost: eps[3].Host,
		SrcPort: 9, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	conn := eps[1].Stack.OpenTCP(flow, eps[1].Node, eps[3].Node, 1_000_000)
	n.Run(50 * time.Millisecond)
	if !conn.Done() {
		t.Fatalf("clos flow incomplete: acked=%d; %+v", conn.Acked(), n.Counters())
	}
	if sink.FCTSample(traffic.PortReplay).N() != 1 {
		t.Fatal("no FCT recorded")
	}
	// On a static electrical path 1 MB at 100 Gbps should finish in well
	// under a millisecond plus RTTs.
	if fct := sink.FCTSample(traffic.PortReplay).Max(); fct > float64(int64(5*time.Millisecond)) {
		t.Fatalf("clos FCT %.0fns implausibly slow", fct)
	}
}

func TestEndToEndHybridLayers(t *testing.T) {
	// c-Through pattern: electrical default routes at layer 0, direct
	// optical circuits at layer 1.
	cfg := Config{NodeNum: 4, Uplink: 1, ElectricalGbps: 10,
		SliceDurationNs: 100_000, Seed: 7}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elecPaths, err := n.ElectricalPaths()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployRoutingLayer(0, elecPaths, LookupHop, MultipathNone); err != nil {
		t.Fatal(err)
	}
	// Static optical circuits pairing 0-1 and 2-3 (TA instance).
	circuits := []Circuit{
		Connect(0, 0, 1, 0, WildcardSlice),
		Connect(2, 0, 3, 0, WildcardSlice),
	}
	if err := n.DeployTopo(circuits, 1); err != nil {
		t.Fatal(err)
	}
	optPaths := n.Direct(circuits, 1, RoutingOptions{})
	if len(optPaths) != 4 { // 0<->1 and 2<->3, both directions
		t.Fatalf("direct paths = %d, want 4", len(optPaths))
	}
	if err := n.DeployRoutingLayer(1, optPaths, LookupHop, MultipathNone); err != nil {
		t.Fatal(err)
	}
	eps := n.Endpoints()

	// 0 -> 1 rides the optical circuit (fast, 100G); 0 -> 2 has only the
	// 10G electrical path.
	f01 := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[1].Host,
		SrcPort: 10, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	f02 := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[2].Host,
		SrcPort: 11, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	c01 := eps[0].Stack.OpenTCP(f01, 0, 1, 2_000_000)
	c02 := eps[0].Stack.OpenTCP(f02, 0, 2, 2_000_000)
	n.Run(80 * time.Millisecond)
	if !c01.Done() || !c02.Done() {
		t.Fatalf("hybrid flows incomplete: %d / %d; %+v", c01.Acked(), c02.Acked(), n.Counters())
	}
	// The optical fabric must actually have carried the 0->1 traffic.
	if n.OpticalFabric().Forwarded == 0 {
		t.Fatal("optical fabric carried nothing")
	}
	if n.ElectricalFabric().Forwarded == 0 {
		t.Fatal("electrical fabric carried nothing")
	}
	// Layer sanity: after clearing layer 1, traffic still flows via elec.
	if err := n.ClearRoutingLayer(1); err != nil {
		t.Fatal(err)
	}
	f10 := core.FlowKey{SrcHost: eps[1].Host, DstHost: eps[0].Host,
		SrcPort: 12, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	c10 := eps[1].Stack.OpenTCP(f10, 1, 0, 100_000)
	n.Run(50 * time.Millisecond)
	if !c10.Done() {
		t.Fatalf("post-clear flow incomplete; %+v", n.Counters())
	}
}

func TestCollectObservesTraffic(t *testing.T) {
	n := rotorNet4(t, nil)
	eps := n.Endpoints()
	flow := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[2].Host,
		SrcPort: 1, DstPort: 2, Proto: core.ProtoTCP}
	eps[0].Stack.OpenTCP(flow, 0, 2, 500_000)
	tm := n.Collect(50 * time.Millisecond)
	if tm[0][2] < 400_000 {
		t.Fatalf("collect saw %.0f bytes 0->2, want ~500000", tm[0][2])
	}
	// A second collect over an idle period returns ~nothing (reset works;
	// only stray ACK reverse traffic counts toward 2->0).
	tm2 := n.Collect(10 * time.Millisecond)
	if tm2[0][2] > 100_000 {
		t.Fatalf("collect not reset: %.0f", tm2[0][2])
	}
}

func TestDeployRollback(t *testing.T) {
	n := rotorNet4(t, nil)
	// An infeasible deployment must fail and leave the previous routing
	// functional.
	bad := []Path{{Src: 0, Dst: 3, TS: 0, Weight: 1,
		Hops: []Hop{{Node: 0, Egress: 7, DepSlice: 0}}}}
	if err := n.DeployRouting(bad, LookupHop, MultipathPacket); err == nil {
		t.Fatal("infeasible deployment accepted")
	}
	eps := n.Endpoints()
	sink := traffic.NewSink(eps)
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[3])
	probe.Start(int64(5 * time.Millisecond))
	n.Run(10 * time.Millisecond)
	if sink.RTT.N() == 0 {
		t.Fatal("routing lost after failed deployment")
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	if _, err := New(Config{NodeNum: 1}); err == nil {
		t.Error("node_num=1 accepted")
	}
	if _, err := New(Config{NodeNum: 4, Node: "pod"}); err == nil {
		t.Error("bad node type accepted")
	}
	if _, err := New(Config{NodeNum: 4, Response: "explode"}); err == nil {
		t.Error("bad response accepted")
	}
	n, err := New(Config{NodeNum: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n.Cfg.Uplink != 1 || n.Cfg.SliceDurationNs != 100_000 || n.Cfg.LineRateGbps != 100 {
		t.Fatalf("defaults not applied: %+v", n.Cfg)
	}
	if len(n.Hosts()) != 4 || len(n.Switches()) != 4 {
		t.Fatal("wrong device counts")
	}
}

func TestAddEntryAPI(t *testing.T) {
	n := rotorNet4(t, nil)
	err := n.Add(Entry{
		Match:   Match{ArrSlice: WildcardSlice, Src: NoNode, Dst: 2},
		Actions: []Action{{Egress: 0, DepSlice: WildcardSlice}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Add(Entry{}, 99); err == nil {
		t.Fatal("add to unknown node accepted")
	}
}
