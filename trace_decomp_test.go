package openoptics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/traffic"
)

// decodeTraces parses a JSONL trace buffer, failing the test on any bad line.
func decodeTraces(t *testing.T, buf string) []core.PktTrace {
	t.Helper()
	var out []core.PktTrace
	for _, line := range strings.Split(strings.TrimSpace(buf), "\n") {
		if line == "" {
			continue
		}
		var p core.PktTrace
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		out = append(out, p)
	}
	return out
}

// assertIdentity pins the decomposition identity for one delivered trace:
// slice-wait + queueing + serialization + propagation == EndNs − StartNs,
// exactly, with the first hop anchored at the source NIC.
func assertIdentity(t *testing.T, p *core.PktTrace) core.Decomposition {
	t.Helper()
	if len(p.Hops) == 0 {
		t.Fatalf("delivered trace with no hops: %+v", p)
	}
	if p.Hops[0].TimeNs != p.StartNs {
		t.Fatalf("first hop at %d ns, want the source-NIC hop at StartNs %d: %+v",
			p.Hops[0].TimeNs, p.StartNs, p)
	}
	if p.Hops[0].DeqNs != p.StartNs {
		t.Fatalf("source-NIC hop waits %d ns; the NIC never queues a popped packet",
			p.Hops[0].DeqNs-p.StartNs)
	}
	d, ok := p.Decompose()
	if !ok {
		t.Fatalf("delivered trace does not decompose (missing or unordered stamps): %+v", p)
	}
	if got, want := d.TotalNs(), p.EndNs-p.StartNs; got != want {
		t.Fatalf("decomposition identity broken: components %+v sum to %d, end-to-end is %d: %+v",
			d, got, want, p)
	}
	return d
}

// TestDecompositionIdentityOptical pins the per-hop latency attribution on
// the optical calendar path: for every delivered sampled packet of a
// 4-node RotorNet VLB run, the four components sum exactly to the
// end-to-end latency, and time waiting for circuits lands in slice-wait.
func TestDecompositionIdentityOptical(t *testing.T) {
	n := rotorNet4(t, nil)
	tr := n.Tracer(1)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	eps := n.Endpoints()
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[3])
	probe.IntervalNs = 100_000
	probe.Start(int64(5 * time.Millisecond))
	n.Run(8 * time.Millisecond)

	var total core.Decomposition
	var delivered int
	for _, p := range decodeTraces(t, buf.String()) {
		if p.Disposition != core.DispDelivered {
			continue
		}
		delivered++
		total.Add(assertIdentity(t, &p))
	}
	if delivered == 0 {
		t.Fatal("no delivered traces")
	}
	if total.SliceWaitNs == 0 {
		t.Fatal("VLB over a rotor never waited for a slice; calendar hops are not classified")
	}
	st := tr.Stats()
	if st.IdentityViolations != 0 {
		t.Fatalf("tracer recorded %d identity violations", st.IdentityViolations)
	}
	if st.Comp.TotalNs() != st.DeliveredLatencyNs {
		t.Fatalf("tracer attribution totals %d != delivered latency %d",
			st.Comp.TotalNs(), st.DeliveredLatencyNs)
	}
	if st.Delivered != uint64(delivered) {
		t.Fatalf("tracer counted %d delivered, JSONL has %d", st.Delivered, delivered)
	}
}

// TestDecompositionIdentityElectrical pins the identity on the packet-
// switched path: every delivered trace of an electrical-only TCP transfer
// crosses the fabric (a Node == NoNode hop), decomposes exactly, and
// attributes zero slice-wait (there is no calendar anywhere).
func TestDecompositionIdentityElectrical(t *testing.T) {
	cfg := Config{NodeNum: 4, Uplink: 1, ElectricalGbps: 100, Seed: 7}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := n.ElectricalPaths()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployRouting(paths, LookupHop, MultipathNone); err != nil {
		t.Fatal(err)
	}
	tr := n.Tracer(1)
	var buf bytes.Buffer
	tr.SetSink(&buf)
	eps := n.Endpoints()
	flow := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[2].Host,
		SrcPort: 9, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	eps[0].Stack.OpenTCP(flow, eps[0].Node, eps[2].Node, 500_000)
	n.Run(40 * time.Millisecond)

	var total core.Decomposition
	var delivered, crossedFabric int
	for _, p := range decodeTraces(t, buf.String()) {
		if p.Disposition != core.DispDelivered {
			continue
		}
		delivered++
		for _, h := range p.Hops {
			if h.Node == core.NoNode {
				if h.Calendar() {
					t.Fatalf("fabric hop classified as calendar: %+v", h)
				}
				crossedFabric++
				break
			}
		}
		total.Add(assertIdentity(t, &p))
	}
	if delivered == 0 || crossedFabric == 0 {
		t.Fatalf("want delivered traces crossing the electrical fabric, got %d/%d",
			crossedFabric, delivered)
	}
	if total.SliceWaitNs != 0 {
		t.Fatalf("electrical-only network attributed %d ns to slice-wait", total.SliceWaitNs)
	}
	if st := tr.Stats(); st.IdentityViolations != 0 {
		t.Fatalf("tracer recorded %d identity violations", st.IdentityViolations)
	}
}

// TestTracerCountersOnMetrics pins the trace-loss satellite: Started,
// Finished, and SinkErrs are visible on the registry, track the tracer,
// and read 0 (not absent) when tracing is off.
func TestTracerCountersOnMetrics(t *testing.T) {
	n := rotorNet4(t, nil)
	reg := n.Metrics() // registered before the tracer exists
	for _, name := range []string{
		"oo_tracer_started_total", "oo_tracer_finished_total", "oo_tracer_sink_errors_total",
	} {
		if v, ok := reg.Value(name); !ok || v != 0 {
			t.Fatalf("%s = %v,%v before tracing; want 0,true", name, v, ok)
		}
	}
	tr := n.Tracer(1)
	tr.SetSink(failWriter{})
	eps := n.Endpoints()
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[3])
	probe.IntervalNs = 100_000
	probe.Start(int64(2 * time.Millisecond))
	n.Run(5 * time.Millisecond)

	if v, _ := reg.Value("oo_tracer_started_total"); v != float64(tr.Started) || v == 0 {
		t.Fatalf("oo_tracer_started_total = %v, tracer says %d", v, tr.Started)
	}
	if v, _ := reg.Value("oo_tracer_finished_total"); v != float64(tr.Finished) || v == 0 {
		t.Fatalf("oo_tracer_finished_total = %v, tracer says %d", v, tr.Finished)
	}
	if v, _ := reg.Value("oo_tracer_sink_errors_total"); v != float64(tr.SinkErrs) || v == 0 {
		t.Fatalf("oo_tracer_sink_errors_total = %v, tracer says %d (failing sink must count)",
			v, tr.SinkErrs)
	}
	snap := n.Snapshot()
	if snap.Trace == nil || snap.Trace.SinkErrs != tr.SinkErrs {
		t.Fatalf("snapshot trace stats = %+v, want SinkErrs %d", snap.Trace, tr.SinkErrs)
	}
}

// failWriter makes every JSONL flush fail, driving SinkErrs.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink closed" }
