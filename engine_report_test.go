package openoptics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"openoptics/internal/engineobs"
)

// rotorNet16 builds the observatory's acceptance topology: 16 nodes, so a
// 4-way shard profile has 4 ToR groups of 4 and real cross-partition flow.
func rotorNet16(t *testing.T) *Net {
	t.Helper()
	cfg := Config{
		Node:            "rack",
		NodeNum:         16,
		Uplink:          1,
		HostsPerNode:    1,
		SliceDurationNs: 100_000,
		Seed:            7,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	circuits, numSlices, err := RoundRobin(cfg.NodeNum, cfg.Uplink)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployTopo(circuits, numSlices); err != nil {
		t.Fatal(err)
	}
	paths := n.VLB(circuits, numSlices, RoutingOptions{})
	if err := n.DeployRouting(paths, LookupHop, MultipathPacket); err != nil {
		t.Fatal(err)
	}
	return n
}

// observatoryRun builds the 16-node net with both instruments on, drives
// probe traffic, and returns the engine report.
func observatoryRun(t *testing.T) *engineobs.Report {
	t.Helper()
	n := rotorNet16(t)
	n.AttachEngineLedger(4)
	n.EnableShardProfile(4)
	probeTraffic(t, n, int64(4*time.Millisecond))
	n.Run(5 * time.Millisecond)
	return n.EngineReport()
}

func TestEngineReportEndToEnd(t *testing.T) {
	r := observatoryRun(t)
	if r.Events == 0 || r.Packets == 0 || r.EventsPerPacket <= 1 {
		t.Fatalf("headline: events=%d packets=%d e/p=%.2f", r.Events, r.Packets, r.EventsPerPacket)
	}
	if r.Pressure == nil || r.Pool == nil || r.Ledger == nil || r.Shards == nil {
		t.Fatalf("missing sections: %+v", r)
	}
	if r.Pressure.InlinePushes+r.Pressure.SpillPushes == 0 {
		t.Fatal("no pushes recorded")
	}
	if r.Pool.Gets != r.Packets || r.Pool.HighWater == 0 {
		t.Fatalf("pool section = %+v vs packets %d", r.Pool, r.Packets)
	}

	// The ledger must evidence the propagation-delivery edge and find it
	// (or another constant-delay edge) mergeable with a concrete count.
	var sawDeliverIngress bool
	for _, e := range r.Ledger.Edges {
		if e.Parent == "link.deliver" && e.Child == "switch.ingress" {
			sawDeliverIngress = true
			if e.MinDelayNs != e.MaxDelayNs {
				t.Fatalf("deliver->ingress not constant: %+v", e)
			}
		}
	}
	if !sawDeliverIngress {
		t.Fatal("link.deliver -> switch.ingress edge missing")
	}
	if len(r.Ledger.Mergeable) == 0 || r.Ledger.EventsSaved == 0 {
		t.Fatalf("merge analysis found nothing: %+v", r.Ledger.Mergeable)
	}
	if len(r.Ledger.Chains) == 0 || len(r.Ledger.Adjacent) == 0 {
		t.Fatal("chains or adjacency empty")
	}

	// Shard section: 4×4 matrix, real cross-partition flow, a positive
	// conservative-sync window.
	s := r.Shards
	if s.Parts != 4 || s.GroupSize != 4 || len(s.Flow) != 4 || len(s.Flow[0]) != 4 {
		t.Fatalf("shard dims = %+v", s)
	}
	if s.CrossHops == 0 || s.LocalHops == 0 {
		t.Fatalf("hops = local %d cross %d", s.LocalHops, s.CrossHops)
	}
	if !s.HasCross || s.MinLookaheadNs <= 0 {
		t.Fatalf("lookahead = %d (has=%v), want positive window", s.MinLookaheadNs, s.HasCross)
	}
	if len(s.LookaheadHist) == 0 {
		t.Fatal("lookahead histogram empty")
	}
}

// TestEngineReportDeterministic: two identical runs yield byte-identical
// reports (sans manifest) and byte-identical renders.
func TestEngineReportDeterministic(t *testing.T) {
	a, b := observatoryRun(t), observatoryRun(t)
	ja, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := json.MarshalIndent(b, "", "  ")
	if !bytes.Equal(ja, jb) {
		t.Fatalf("reports differ across identical runs:\n%s\nvs\n%s", ja, jb)
	}
	var ra, rb bytes.Buffer
	engineobs.RenderChains(&ra, a)
	engineobs.RenderChains(&rb, b)
	if ra.String() != rb.String() {
		t.Fatal("chains render differs across identical runs")
	}
}

// TestLedgerOverheadOffByDefault: a Net without instruments produces a
// report with pressure and pool only, and the engine carries no ledger.
func TestLedgerOverheadOffByDefault(t *testing.T) {
	n := rotorNet4(t, nil)
	probeTraffic(t, n, int64(time.Millisecond))
	n.Run(2 * time.Millisecond)
	if n.Engine().Ledger() != nil || n.ShardProfile() != nil {
		t.Fatal("instruments attached without opt-in")
	}
	r := n.EngineReport()
	if r.Ledger != nil || r.Shards != nil {
		t.Fatalf("sections present without instruments: %+v", r)
	}
	if r.Pressure == nil || r.Pool == nil || r.Events == 0 {
		t.Fatalf("always-on sections missing: %+v", r)
	}
}

func TestSnapshotCarriesEngineAndPool(t *testing.T) {
	n := rotorNet4(t, nil)
	probeTraffic(t, n, int64(time.Millisecond))
	n.Run(time.Millisecond)
	snap := n.Snapshot()
	if snap.Engine.InlinePushes+snap.Engine.SpillPushes == 0 {
		t.Fatalf("snapshot engine section empty: %+v", snap.Engine)
	}
	if snap.Pool.Gets == 0 || snap.Pool.HighWater == 0 {
		t.Fatalf("snapshot pool section empty: %+v", snap.Pool)
	}
}

func TestRegistryExportsPoolAndSchedMetrics(t *testing.T) {
	n := rotorNet4(t, nil)
	probeTraffic(t, n, int64(time.Millisecond))
	n.Run(time.Millisecond)
	var b bytes.Buffer
	if err := n.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"oo_pool_gets_total",
		"oo_pool_high_water",
		"oo_sched_inline_pushes_total",
		"oo_sched_pending_events",
		"oo_sched_bucket_occupancy_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics export missing %s", want)
		}
	}
}
