package openoptics

import (
	"runtime"
	"testing"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/traffic"
)

// These tests pin the packet lifecycle end to end: every packet a run
// allocates is returned to the pool by a sink — host delivery or a drop
// site — so a drained simulation leaves zero outstanding packets, and a
// long steady-state run holds memory flat. A leak here means some code
// path consumes a packet without freeing it (or frees it twice, which the
// simdebug pool tests in internal/core catch).

// rotorNetForLeak builds the 4-node RotorNet with VLB routing used by the
// end-to-end benchmarks.
func rotorNetForLeak(t testing.TB) *Net {
	t.Helper()
	n, err := New(Config{NodeNum: 4, Uplink: 1, SliceDurationNs: 100_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	circuits, numSlices, err := RoundRobin(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployTopo(circuits, numSlices); err != nil {
		t.Fatal(err)
	}
	paths := n.VLB(circuits, numSlices, RoutingOptions{})
	if err := n.DeployRouting(paths, LookupHop, MultipathPacket); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPacketPoolNoLeakOpticalRun(t *testing.T) {
	n := rotorNetForLeak(t)
	eps := n.Endpoints()
	traffic.NewSink(eps)
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[2])
	probe.IntervalNs = 1_000
	probe.Start(2_000_000) // inject for 2 ms
	// Run far past the last injection so every in-flight packet reaches a
	// sink (delivery or drop) and switch queues drain across circuits.
	n.Run(10 * time.Millisecond)
	st := n.PacketPool().Stats()
	if st.Gets == 0 {
		t.Fatal("no pooled packets were allocated — probe not wired to the pool?")
	}
	if st.Outstanding != 0 {
		t.Fatalf("packet leak after drained optical run: %d outstanding (gets=%d puts=%d)",
			st.Outstanding, st.Gets, st.Puts)
	}
}

func TestPacketPoolNoLeakElectricalRun(t *testing.T) {
	n, err := New(Config{NodeNum: 4, Uplink: 1, ElectricalGbps: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := n.ElectricalPaths()
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployRouting(paths, LookupHop, MultipathNone); err != nil {
		t.Fatal(err)
	}
	eps := n.Endpoints()
	traffic.NewSink(eps)
	flow := core.FlowKey{SrcHost: eps[1].Host, DstHost: eps[3].Host,
		SrcPort: 9, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	conn := eps[1].Stack.OpenTCP(flow, eps[1].Node, eps[3].Node, 500_000)
	n.Run(50 * time.Millisecond)
	if !conn.Done() {
		t.Fatalf("flow incomplete: acked=%d", conn.Acked())
	}
	st := n.PacketPool().Stats()
	if st.Gets == 0 {
		t.Fatal("no pooled packets were allocated")
	}
	if st.Outstanding != 0 {
		t.Fatalf("packet leak after drained electrical run: %d outstanding (gets=%d puts=%d)",
			st.Outstanding, st.Gets, st.Puts)
	}
}

// TestSteadyStateMemoryFlat pins the tentpole's long-run property: once
// the pool and scheduler have warmed up, continued simulation does not
// grow the heap — packets recycle through slabs and events through the
// wheel, so HeapAlloc after GC stays flat no matter how long the run.
func TestSteadyStateMemoryFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run memory test")
	}
	n := rotorNetForLeak(t)
	eps := n.Endpoints()
	traffic.NewSink(eps)
	probe := traffic.NewUDPProbe(n.Engine(), eps[0], eps[2])
	probe.IntervalNs = 1_000
	probe.Start(1 << 62)
	// Warm up: materialize slabs, scheduler arrays, telemetry buffers.
	n.Run(20 * time.Millisecond)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	n.Run(100 * time.Millisecond)
	runtime.GC()
	runtime.ReadMemStats(&after)
	// Allow a small absolute slack for lazily-grown runtime structures;
	// a real leak at this packet rate (≈100k packets over the window)
	// would grow the heap by megabytes.
	const slack = 256 << 10
	if after.HeapAlloc > before.HeapAlloc+slack {
		t.Fatalf("heap grew %.1f KiB over a 100 ms steady-state run (before=%d after=%d)",
			float64(after.HeapAlloc-before.HeapAlloc)/1024, before.HeapAlloc, after.HeapAlloc)
	}
}
