#!/usr/bin/env bash
# Engine-observatory smoke: run oosim on the 16-node acceptance topology
# with the causality ledger and a 4-way shard profile on, then render every
# `ooctl engine` view — chains must name at least one mergeable edge with a
# concrete events-saved count, shards must print the cross-partition matrix
# and a positive conservative-sync window, and every view plus the report
# itself must be byte-identical across invocations. A second ledger-off run
# holds the hot path to its allocation budget. CI runs this via
# `make engine-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/oosim" ./cmd/oosim
go build -o "$tmp/ooctl" ./cmd/ooctl

run_oosim() {
    "$tmp/oosim" -nodes 16 -arch rotornet-vlb -workload rpc -load 0.3 \
        -duration-ms 20 -seed 7 \
        -engine-ledger -engine-partitions 4 -engine-out "$1" \
        >"$tmp/out.log" 2>"$tmp/err.log"
}

run_oosim "$tmp/run.engine.json"
[ -s "$tmp/run.engine.json" ] || { echo "oosim wrote no engine report"; cat "$tmp/err.log"; exit 1; }

# The report file itself is deterministic: same binary, same seed, same
# bytes modulo the manifest's wall-clock start (the one per-invocation
# field; comparison tooling ignores it too).
run_oosim "$tmp/run2.engine.json"
for f in run run2; do
    sed 's/"started_at": *"[^"]*"/"started_at": ""/' "$tmp/$f.engine.json" >"$tmp/$f.masked.json"
done
cmp "$tmp/run.masked.json" "$tmp/run2.masked.json" || { echo "engine report not deterministic"; exit 1; }

# Chains: the merge analysis must name concrete edges and totals — this is
# the evidence ROADMAP item 4 (event-merging 2x) builds on.
"$tmp/ooctl" engine chains "$tmp/run.engine.json" | tee "$tmp/chains.txt"
grep -q 'mergeable edges' "$tmp/chains.txt"
grep -q 'link.deliver -> switch.ingress' "$tmp/chains.txt"
grep -q 'total events saved if merged' "$tmp/chains.txt"
if grep -q 'total events saved if merged: 0 ' "$tmp/chains.txt"; then
    echo "merge analysis found no savings on the acceptance workload"; exit 1
fi

# Pressure: push-rate split and the occupancy histogram must render.
"$tmp/ooctl" engine pressure "$tmp/run.engine.json" >"$tmp/pressure.txt"
grep -q 'inline' "$tmp/pressure.txt"
grep -q 'spill' "$tmp/pressure.txt"
grep -q 'bucket occupancy' "$tmp/pressure.txt"
grep -q 'pool' "$tmp/pressure.txt"

# Shards: 4-way matrix with real cross-partition flow and a positive
# minimum lookahead — the conservative-sync window for ROADMAP item 1.
"$tmp/ooctl" engine shards "$tmp/run.engine.json" | tee "$tmp/shards.txt"
grep -q 'partitions: 4' "$tmp/shards.txt"
grep -q 'min cross-partition lookahead' "$tmp/shards.txt"
if grep -q 'min cross-partition lookahead: none' "$tmp/shards.txt"; then
    echo "no cross-partition events on a 16-node VLB net"; exit 1
fi

# Every view renders byte-identically on a second pass.
for view in chains pressure shards; do
    "$tmp/ooctl" engine "$view" "$tmp/run.engine.json" >"$tmp/$view.2.txt"
    cmp "$tmp/$view.txt" "$tmp/$view.2.txt" || { echo "engine $view render not deterministic"; exit 1; }
done

# Ledger off (the default) keeps the hot path at its allocation budget:
# the observatory must be zero-cost when not attached.
go test -run '^$' -bench 'BenchmarkEndToEndPacketRate$' -benchtime 100x -benchmem . | tee "$tmp/allocs.txt"
awk '/^BenchmarkEndToEndPacketRate/ { seen=1; a=$(NF-1)+0; if (a > 150) { printf "FAIL: %d allocs/op exceeds the 150 ceiling with the ledger off\n", a; exit 1 } printf "allocs/op gate: %d <= 150\n", a } END { if (!seen) { print "FAIL: benchmark did not run"; exit 1 } }' "$tmp/allocs.txt"

echo "engine smoke OK"
