#!/usr/bin/env bash
# Live-observability smoke: boot oosim with -http, scrape /metrics and
# /snapshot mid-run, render a frame with ooctl watch, then stop the run
# with SIGINT and check the graceful-shutdown contract (exit 130). CI
# runs this via `make obsv-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'kill "${sim_pid:-}" 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/oosim" ./cmd/oosim
go build -o "$tmp/ooctl" ./cmd/ooctl

# Long virtual duration so the run is alive for the whole scrape phase;
# SIGINT ends it early. Port 0 avoids collisions; the bound address is
# announced on stderr.
"$tmp/oosim" -nodes 8 -workload memcached -duration-ms 600000 \
    -http 127.0.0.1:0 >"$tmp/out.log" 2>"$tmp/err.log" &
sim_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's#.*live observability on http://##p' "$tmp/err.log" | head -1)"
    [ -n "$addr" ] && break
    kill -0 "$sim_pid" || { cat "$tmp/err.log"; echo "oosim died before serving"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "no listen address announced"; cat "$tmp/err.log"; exit 1; }
echo "oosim serving on $addr"

curl -fsS "http://$addr/healthz" | grep -qx ok

# /runinfo must serve the run's provenance manifest: schema version, config
# digest, and seed set — the live identity of what is being simulated.
curl -fsS "http://$addr/runinfo" >"$tmp/runinfo.json"
grep -q '"schema_version":' "$tmp/runinfo.json"
grep -q '"config_digest":"sha256:' "$tmp/runinfo.json"
grep -q '"seeds":' "$tmp/runinfo.json"

# /metrics must be non-empty, well-formed Prometheus text exposition:
# every line is a comment or `name{labels} value`, and the engine
# counters must be present.
curl -fsS "http://$addr/metrics" >"$tmp/metrics.prom"
grep -q '^oo_engine_events_total ' "$tmp/metrics.prom"
grep -q '^# TYPE oo_switch_rx_pkts_total counter' "$tmp/metrics.prom"
if grep -vE '^(# (HELP|TYPE) )|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf$' \
    "$tmp/metrics.prom" | grep -q .; then
    echo "malformed Prometheus lines:"
    grep -vE '^(# (HELP|TYPE) )|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$' "$tmp/metrics.prom" | head
    exit 1
fi

# /snapshot must be JSON carrying per-switch state; ooctl watch -once
# strict-decodes it into NetSnapshot and renders a frame.
curl -fsS "http://$addr/snapshot" >"$tmp/snapshot.json"
grep -q '"switches":' "$tmp/snapshot.json"
grep -q '"buffered_bytes":' "$tmp/snapshot.json"
"$tmp/ooctl" watch -once "$addr" | tee "$tmp/frame.txt" | grep -q '^totals:'
grep -q '^node ' "$tmp/frame.txt"

# Graceful shutdown: SIGINT must drain the run through the normal exit
# path (final reports on stdout) and exit 130.
kill -INT "$sim_pid"
rc=0
wait "$sim_pid" || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "interrupted oosim exited $rc, want 130"; cat "$tmp/err.log"; exit 1
fi
grep -q 'interrupted — stopping' "$tmp/err.log"
sim_pid=""
echo "obsv smoke OK"
