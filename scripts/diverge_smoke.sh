#!/usr/bin/env bash
# Determinism-auditor smoke: record two identical oosim runs with the
# digest journal on — `ooctl diverge` must pass them as IDENTICAL (exit 0)
# and the journals themselves must be byte-identical modulo the manifest's
# wall-clock start. Then re-run with exactly one same-instant event pair
# swapped (the clean journal's perturb hint, via the simdebug-only
# -perturb-swap harness) — `ooctl diverge` must exit 3 and bisect to that
# exact event, with a byte-deterministic report. A final digest-off run
# holds the hot path to its allocation budget. CI runs this via
# `make diverge-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# The perturbation harness is compiled out of normal builds; the smoke
# needs simdebug binaries for both the recorder and the bisection re-run.
go build -tags simdebug -o "$tmp/oosim" ./cmd/oosim
go build -tags simdebug -o "$tmp/ooctl" ./cmd/ooctl

run_oosim() { # $1 = journal path, rest = extra flags
    local out="$1"; shift
    "$tmp/oosim" -nodes 16 -arch rotornet-vlb -workload rpc -load 0.3 \
        -duration-ms 20 -seed 7 -digest-out "$out" "$@" \
        >"$tmp/out.log" 2>"$tmp/err.log"
}

run_oosim "$tmp/a.digest.jsonl"
run_oosim "$tmp/b.digest.jsonl"
[ -s "$tmp/a.digest.jsonl" ] || { echo "oosim wrote no digest journal"; cat "$tmp/err.log"; exit 1; }

# Journal determinism: identical runs, identical bytes modulo started_at.
for f in a b; do
    sed 's/"started_at":"[^"]*"/"started_at":""/' "$tmp/$f.digest.jsonl" >"$tmp/$f.masked.jsonl"
done
cmp "$tmp/a.masked.jsonl" "$tmp/b.masked.jsonl" || { echo "digest journal not deterministic"; exit 1; }

# Identical journals: exit 0, IDENTICAL verdict.
"$tmp/ooctl" diverge "$tmp/a.digest.jsonl" "$tmp/b.digest.jsonl" | tee "$tmp/same.txt"
grep -q 'verdict: IDENTICAL' "$tmp/same.txt"

# Perturb: swap the one same-instant pair the clean journal hints at.
hint="$(sed -n 's/.*"perturb_hint":"\([0-9]*:[0-9]*\)".*/\1/p' "$tmp/a.digest.jsonl")"
[ -n "$hint" ] || { echo "clean journal carries no perturb hint"; exit 1; }
echo "perturbing with -perturb-swap $hint"
run_oosim "$tmp/p.digest.jsonl" -perturb-swap "$hint"

rc=0
"$tmp/ooctl" diverge "$tmp/a.digest.jsonl" "$tmp/p.digest.jsonl" >"$tmp/diverged.txt" || rc=$?
cat "$tmp/diverged.txt"
[ "$rc" -eq 3 ] || { echo "ooctl diverge exited $rc on a perturbed run, want 3"; exit 1; }
grep -q 'verdict: DIVERGED' "$tmp/diverged.txt"
grep -q 'first divergent window: #' "$tmp/diverged.txt"
# Bisection names the exact first divergent event: the swapped pair's
# lower sequence number, with full (t, seq, class, node) identification.
grep -q 'first divergent event: index' "$tmp/diverged.txt"
lo="${hint%%:*}"; hi="${hint##*:}"
if [ "$hi" -lt "$lo" ]; then lo="$hi"; fi
grep -q "seq=$lo " "$tmp/diverged.txt" || { echo "report does not name swapped seq $lo"; exit 1; }
grep -Eq 't=[0-9]+ns seq=[0-9]+ class=[a-z.]+ node=[0-9]+' "$tmp/diverged.txt"

# The divergence report is byte-deterministic (bisection re-runs included).
rc2=0
"$tmp/ooctl" diverge "$tmp/a.digest.jsonl" "$tmp/p.digest.jsonl" >"$tmp/diverged.2.txt" || rc2=$?
[ "$rc2" -eq 3 ]
cmp "$tmp/diverged.txt" "$tmp/diverged.2.txt" || { echo "diverge report not deterministic"; exit 1; }

# Digest off (the default) keeps the hot path at its allocation budget:
# the auditor must be zero-cost when not attached.
go test -run '^$' -bench 'BenchmarkEndToEndPacketRate$' -benchtime 100x -benchmem . | tee "$tmp/allocs.txt"
awk '/^BenchmarkEndToEndPacketRate/ { seen=1; a=$(NF-1)+0; if (a > 150) { printf "FAIL: %d allocs/op exceeds the 150 ceiling with the digest off\n", a; exit 1 } printf "allocs/op gate: %d <= 150\n", a } END { if (!seen) { print "FAIL: benchmark did not run"; exit 1 } }' "$tmp/allocs.txt"

echo "diverge smoke OK"
