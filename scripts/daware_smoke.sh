#!/usr/bin/env bash
# Demand-aware control-plane smoke: run the committed daware sweep spec at
# -jobs 1 and -jobs 4 and require byte-identical summaries, at least one
# mid-run reconfiguration from the aware policy (and none from the
# oblivious baseline), and the aware policy beating oblivious on median
# FCT under the spec's skewed pair demand. Then a single oosim run checks
# the control loop's metrics reach the exported registry. CI runs this via
# `make daware-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/oosim" ./cmd/oosim
go build -o "$tmp/oosweep" ./cmd/oosweep

"$tmp/oosweep" run -spec testdata/sweep_daware.json -out "$tmp/j1" -jobs 1 -quiet
"$tmp/oosweep" run -spec testdata/sweep_daware.json -out "$tmp/j4" -jobs 4 -quiet

# Determinism across worker counts: the CSV must match byte for byte, and
# the JSON summary too once the run manifest's wall-clock timestamp (the
# only legitimately run-dependent field) is masked.
cmp "$tmp/j1/summary.csv" "$tmp/j4/summary.csv" \
    || { echo "summary.csv differs between -jobs 1 and -jobs 4"; exit 1; }
for d in j1 j4; do
    sed 's/"started_at": *"[^"]*"/"started_at": ""/' "$tmp/$d/summary.json" >"$tmp/$d.masked.json"
done
cmp "$tmp/j1.masked.json" "$tmp/j4.masked.json" \
    || { echo "summary.json differs between -jobs 1 and -jobs 4 beyond started_at"; exit 1; }

# Per-policy checks from the CSV (columns: 15=fct_p50_ns, 22=policy,
# 24=reconfigs).
read -r aware_p50 aware_rc < <(awk -F, '$22=="aware" {print $15, $24}' "$tmp/j1/summary.csv")
read -r obl_p50 obl_rc < <(awk -F, '$22=="oblivious" {print $15, $24}' "$tmp/j1/summary.csv")
read -r rg_p50 rg_rc < <(awk -F, '$22=="reqgrant" {print $15, $24}' "$tmp/j1/summary.csv")
[ -n "$aware_p50" ] && [ -n "$obl_p50" ] && [ -n "$rg_p50" ] \
    || { echo "sweep missing a policy row"; cat "$tmp/j1/summary.csv"; exit 1; }

[ "$aware_rc" -ge 1 ] || { echo "aware policy reconfigured $aware_rc times, want >= 1"; exit 1; }
[ "$rg_rc" -ge 1 ] || { echo "reqgrant policy reconfigured $rg_rc times, want >= 1"; exit 1; }
[ "$obl_rc" -eq 0 ] || { echo "oblivious baseline reconfigured $obl_rc times, want 0"; exit 1; }

awk -v a="$aware_p50" -v o="$obl_p50" 'BEGIN { exit !(a+0 < o+0) }' \
    || { echo "aware p50 ${aware_p50}ns not better than oblivious ${obl_p50}ns"; exit 1; }
echo "fct_p50_ns: aware=$aware_p50 reqgrant=$rg_p50 oblivious=$obl_p50"

# The control loop's telemetry must reach the exported metrics registry,
# with at least one hot-swap counted.
"$tmp/oosim" -arch daware -policy aware -nodes 8 -hot-frac 0.5 -hot-pairs 2 \
    -workload rpc -load 0.3 -duration-ms 20 -metrics-out "$tmp/metrics.json" >"$tmp/sim.txt"
grep -q 'demand: epochs=' "$tmp/sim.txt" || { echo "oosim printed no demand stats"; exit 1; }
for m in oo_reconfig_total oo_demand_epochs_total oo_predictor_error_ratio oo_matching_weight_coverage; do
    grep -q "$m" "$tmp/metrics.json" || { echo "metric $m missing from export"; exit 1; }
done
rc="$(grep -A8 '"name": "oo_reconfig_total"' "$tmp/metrics.json" \
    | grep -o '"value": [0-9.]*' | head -1 | awk '{print $2}')"
awk -v rc="${rc:-0}" 'BEGIN { exit !(rc+0 >= 1) }' \
    || { echo "oo_reconfig_total=${rc:-missing}, want >= 1"; exit 1; }

echo "daware smoke OK"
