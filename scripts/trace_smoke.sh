#!/usr/bin/env bash
# Trace-analytics smoke: run a small oosim with full-rate tracing, then push
# the JSONL through every `ooctl trace` subcommand — the summary must report
# records and a complete delay attribution, the hotspot/drop tables must
# render, and the Perfetto export must be valid Chrome trace-event JSON and
# byte-identical across invocations. CI runs this via `make trace-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/oosim" ./cmd/oosim
go build -o "$tmp/ooctl" ./cmd/ooctl

# Small rotor net, full sample rate, metrics dump so the FCT histogram path
# (Tracer.FinalizeFlows before -metrics-out) is exercised end to end.
"$tmp/oosim" -nodes 4 -workload udp-probe -duration-ms 20 \
    -trace-out "$tmp/run.trace.jsonl" -trace-sample 1 \
    -metrics-out "$tmp/metrics.prom" >"$tmp/out.log" 2>"$tmp/err.log"

[ -s "$tmp/run.trace.jsonl" ] || { echo "oosim wrote no traces"; cat "$tmp/err.log"; exit 1; }

# The trace histograms (latency, per-component attribution, FCT) must reach
# the metrics dump, and the tracer lifecycle counters must be exported.
grep -q '^oo_trace_latency_ns_count ' "$tmp/metrics.prom"
grep -q 'oo_trace_component_ns_count{component="slice_wait"}' "$tmp/metrics.prom"
grep -q '^oo_trace_fct_ns_count ' "$tmp/metrics.prom"
grep -q '^oo_tracer_started_total ' "$tmp/metrics.prom"
grep -q '^oo_tracer_sink_errors_total 0' "$tmp/metrics.prom"

# Summary: records present, the four-component attribution rendered, and
# no identity violations (the decomposition must sum exactly on every
# delivered packet the simulator emits).
"$tmp/ooctl" trace summary "$tmp/run.trace.jsonl" | tee "$tmp/summary.txt"
grep -q '^records: ' "$tmp/summary.txt"
grep -q 'slice_wait' "$tmp/summary.txt"
grep -q 'propagation' "$tmp/summary.txt"
if grep -q 'identity violations' "$tmp/summary.txt"; then
    echo "trace summary reports identity violations"; exit 1
fi
if grep -q 'corrupt lines skipped' "$tmp/summary.txt"; then
    echo "fresh trace file reported corrupt lines"; exit 1
fi

# The table views must render their headers over the same file.
"$tmp/ooctl" trace flows -top 3 "$tmp/run.trace.jsonl" >"$tmp/flows.txt"
grep -q 'FCT' "$tmp/flows.txt"
"$tmp/ooctl" trace hops "$tmp/run.trace.jsonl" >"$tmp/hops.txt"
grep -q 'SLICE_WAIT' "$tmp/hops.txt"
"$tmp/ooctl" trace drops "$tmp/run.trace.jsonl" >/dev/null

# Perfetto export: valid Chrome trace-event JSON (strict-decoded by the
# exporter's own validator via `go run`), non-empty, and deterministic.
"$tmp/ooctl" trace export -o "$tmp/export.json" "$tmp/run.trace.jsonl"
"$tmp/ooctl" trace export -o "$tmp/export2.json" "$tmp/run.trace.jsonl"
cmp "$tmp/export.json" "$tmp/export2.json" || { echo "export not deterministic"; exit 1; }
grep -q '"traceEvents":' "$tmp/export.json"
grep -q '"displayTimeUnit":"ns"' "$tmp/export.json"
grep -q '"ph":"X"' "$tmp/export.json"

# Corrupt-tolerance: appending garbage must not break analysis, and the
# damage must be surfaced in the summary.
cp "$tmp/run.trace.jsonl" "$tmp/damaged.jsonl"
printf 'not json at all\n{"pkt_id":12,\n' >>"$tmp/damaged.jsonl"
# (to a file, not a pipe: grep -q exiting at first match would SIGPIPE
# the still-writing ooctl under pipefail)
"$tmp/ooctl" trace summary "$tmp/damaged.jsonl" >"$tmp/damaged.txt"
grep -q 'corrupt lines skipped: 2' "$tmp/damaged.txt"
grep -q '^provenance: schema v1' "$tmp/damaged.txt"

echo "trace smoke OK"
