#!/usr/bin/env bash
# Regression-gate smoke: replay the committed baseline sweep spec, compare
# the fresh run against the committed baseline with `ooctl regress` (equal
# runs must pass), then compare the committed injected-5%-latency fixture
# (it must be caught, exit 3). Also pins report determinism, artifact
# provenance stamping, and the -version surface of all four CLIs. CI runs
# this via `make regress-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/oosim" ./cmd/oosim
go build -o "$tmp/oobench" ./cmd/oobench
go build -o "$tmp/oosweep" ./cmd/oosweep
go build -o "$tmp/ooctl" ./cmd/ooctl

# Every CLI must answer -version with its build provenance and exit 0.
for tool in oosim oobench oosweep ooctl; do
    "$tmp/$tool" -version | grep -q "^$tool " || { echo "$tool -version malformed"; exit 1; }
done

base=testdata/baselines/regress_base.summary.json
inject=testdata/baselines/regress_inject.summary.json

# Replay the baseline spec fresh. The sweep is deterministic, so the run
# must reproduce the committed per-replication metrics exactly.
"$tmp/oosweep" run -spec testdata/sweep_regress.json -out "$tmp/run" -jobs 4 -quiet

# Provenance must reach every artifact of the run: the ledger leads with a
# header line, and the summary carries the same config digest.
head -1 "$tmp/run/ledger.jsonl" | grep -q '"kind":"header"' || { echo "ledger missing provenance header"; exit 1; }
grep -q '"schema_version"' "$tmp/run/summary.json"
grep -q '"config_digest"' "$tmp/run/summary.json"
grep -q '"vcs_revision"\|"module"' "$tmp/run/summary.json"
digest_ledger="$(head -1 "$tmp/run/ledger.jsonl" | grep -o '"config_digest":"sha256:[0-9a-f]*"' | head -1 | grep -o 'sha256:[0-9a-f]*')"
grep -qF "\"${digest_ledger}\"" "$tmp/run/summary.json" || { echo "summary/ledger config digests disagree"; exit 1; }

# Equal runs must pass the gate.
"$tmp/ooctl" regress -baseline "$base" "$tmp/run/summary.json" >"$tmp/pass.txt"
grep -q 'regressions=0' "$tmp/pass.txt"

# The injected 5% latency shift must be caught, with exit code 3 (the
# distinct "gate fired" code — not a tool failure).
rc=0
"$tmp/ooctl" regress -baseline "$base" "$inject" >"$tmp/fail.txt" || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "regress on injected fixture exited $rc, want 3"; cat "$tmp/fail.txt"; exit 1
fi
grep -q 'REGRESSION' "$tmp/fail.txt"
grep -q 'fct_p50_ns' "$tmp/fail.txt"

# Report determinism: identical inputs must produce identical bytes.
"$tmp/ooctl" compare -json "$tmp/r1.json" "$base" "$inject" >/dev/null
"$tmp/ooctl" compare -json "$tmp/r2.json" "$base" "$inject" >/dev/null
cmp "$tmp/r1.json" "$tmp/r2.json" || { echo "compare report not deterministic"; exit 1; }

# Comparing runs of different configurations must be refused (digest
# mismatch warning, nothing aligned) rather than silently mis-aligned.
"$tmp/oosweep" run -spec testdata/sweep_smoke.json -out "$tmp/other" -jobs 4 -quiet >/dev/null
"$tmp/ooctl" compare "$base" "$tmp/other/summary.json" >"$tmp/mismatch.txt"
grep -q 'aligned=0' "$tmp/mismatch.txt"

echo "regress smoke OK"
