package openoptics

import (
	"testing"
	"time"

	"openoptics/internal/core"
	"openoptics/internal/traffic"
)

// The Table-1 API surface exercised end to end through the public wrappers.

func TestAPITopologyFunctions(t *testing.T) {
	if _, _, err := RoundRobin(8, 2); err != nil {
		t.Error(err)
	}
	if _, _, err := RoundRobinDim(16, 2, 1); err != nil {
		t.Error(err)
	}
	if _, err := UniformMesh(8, 2); err != nil {
		t.Error(err)
	}
	tm := NewTM(6)
	tm.Add(0, 3, 100)
	if _, err := Edmonds(tm, 1); err != nil {
		t.Error(err)
	}
	if _, _, err := BvN(tm, 4, 5); err != nil {
		t.Error(err)
	}
	if _, err := Jupiter(tm, nil, 6, 2, 0); err != nil {
		t.Error(err)
	}
	if _, _, err := SORN(tm, 6, 1, 100); err != nil {
		t.Error(err)
	}
	c := Connect(0, 1, 2, 3, WildcardSlice)
	if c.A != 0 || c.PortB != 3 {
		t.Errorf("connect = %v", c)
	}
}

func TestAPIRoutingFunctions(t *testing.T) {
	n, err := New(Config{NodeNum: 8, Uplink: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	circuits, numSlices, err := RoundRobin(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, paths := range map[string][]Path{
		"direct": n.Direct(circuits, numSlices, RoutingOptions{}),
		"vlb":    n.VLB(circuits, numSlices, RoutingOptions{}),
		"opera":  n.Opera(circuits, numSlices, RoutingOptions{MaxHop: 5}),
		"ucmp":   n.UCMP(circuits, numSlices, RoutingOptions{MaxHop: 2}),
		"hoho":   n.HOHO(circuits, numSlices, RoutingOptions{MaxHop: 2}),
	} {
		if len(paths) == 0 {
			t.Errorf("%s produced no paths", name)
		}
	}
	mesh, err := UniformMesh(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, paths := range map[string][]Path{
		"ecmp": n.ECMP(mesh, RoutingOptions{}),
		"wcmp": n.WCMP(mesh, RoutingOptions{}),
		"ksp":  n.KSP(mesh, 3, RoutingOptions{}),
	} {
		if len(paths) == 0 {
			t.Errorf("%s produced no paths", name)
		}
	}
	// Helpers.
	if got := n.Neighbors(circuits, numSlices, 0, 0); len(got) != 2 {
		t.Errorf("neighbors = %v, want 2 (two uplinks)", got)
	}
	if got := n.EarliestPath(circuits, numSlices, 0, 5, 0, 2); len(got) == 0 {
		t.Error("earliest_path found nothing")
	}
}

func TestMonitorTelemetry(t *testing.T) {
	n := rotorNet4(t, nil)
	var snaps []Telemetry
	n.Monitor(5*time.Millisecond, func(tl Telemetry) bool {
		snaps = append(snaps, tl)
		return true
	})
	eps := n.Endpoints()
	flow := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[2].Host,
		SrcPort: 5, DstPort: traffic.PortReplay, Proto: core.ProtoTCP}
	eps[0].Stack.OpenTCP(flow, eps[0].Node, eps[2].Node, 2_000_000)
	n.Run(30 * time.Millisecond)
	if len(snaps) < 5 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if len(last.BufferBytes) != 4 || len(last.TxBytes) != 4 {
		t.Fatalf("snapshot shape: %+v", last)
	}
	var tx uint64
	for _, v := range last.TxBytes {
		tx += v
	}
	if tx == 0 {
		t.Fatal("no transmitted bytes observed by telemetry")
	}
}

func TestTDTCPConfigWiring(t *testing.T) {
	cfg := Config{NodeNum: 4, Uplink: 1, TDTCPDivisions: 3, Seed: 3}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	circuits, ns, err := RoundRobin(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DeployTopo(circuits, ns); err != nil {
		t.Fatal(err)
	}
	if err := n.DeployRouting(n.VLB(circuits, ns, RoutingOptions{}),
		LookupHop, MultipathPacket); err != nil {
		t.Fatal(err)
	}
	eps := n.Endpoints()
	flow := core.FlowKey{SrcHost: eps[0].Host, DstHost: eps[2].Host,
		SrcPort: 5, DstPort: 80, Proto: core.ProtoTCP}
	conn := eps[0].Stack.OpenTCP(flow, eps[0].Node, eps[2].Node, 300_000)
	n.Run(60 * time.Millisecond)
	if !conn.Done() {
		t.Fatalf("TDTCP flow incomplete: %d", conn.Acked())
	}
	if got := len(conn.DivisionWindows()); got != 3 {
		t.Fatalf("division windows = %d, want 3", got)
	}
}
