package openoptics

import (
	"openoptics/internal/core"
	"openoptics/internal/routing"
	"openoptics/internal/telemetry"
	"openoptics/internal/topo"
)

// This file re-exports the user-facing vocabulary so programs against the
// framework read like the paper's Fig. 5 snippets without importing
// internal packages.

// Core types.
type (
	// NodeID identifies an endpoint node (ToR, pod switch, or NIC).
	NodeID = core.NodeID
	// PortID identifies a port on a node.
	PortID = core.PortID
	// HostID identifies a host under a rack node.
	HostID = core.HostID
	// Slice is a time-slice index; WildcardSlice matches/means any.
	Slice = core.Slice
	// Circuit is one optical circuit (the connect() primitive's result).
	Circuit = core.Circuit
	// Path is a routing path for (src, dst, arrival slice).
	Path = core.Path
	// Hop is one step of a Path.
	Hop = core.Hop
	// TM is a traffic matrix.
	TM = core.TM
	// Entry is a raw time-flow table entry (the add() API).
	Entry = core.Entry
	// Match is an Entry's match side.
	Match = core.Match
	// Action is an Entry's action side.
	Action = core.Action
	// LookupMode selects per-hop or source-routing compilation.
	LookupMode = core.LookupMode
	// MultipathMode selects packet- or flow-level path hashing.
	MultipathMode = core.MultipathMode
	// RoutingOptions tunes the routing algorithms.
	RoutingOptions = routing.Options

	// Registry is the network-wide metrics registry (Net.Metrics).
	Registry = telemetry.Registry
	// MetricLabel is one name=value metric label for registry queries.
	MetricLabel = telemetry.Label
	// Tracer is the sampled in-band packet tracer (Net.Tracer).
	Tracer = telemetry.Tracer
	// PktTrace is one packet's finished in-band trace record.
	PktTrace = core.PktTrace
	// TraceHop is one hop of a PktTrace.
	TraceHop = core.TraceHop
	// DropReason names why a packet was dropped.
	DropReason = core.DropReason
)

// Deployment option values (the LOOKUP and MULTIPATH arguments).
const (
	LookupHop       = core.LookupHop
	LookupSource    = core.LookupSource
	MultipathNone   = core.MultipathNone
	MultipathPacket = core.MultipathPacket
	MultipathFlow   = core.MultipathFlow
	WildcardSlice   = core.WildcardSlice
	NoNode          = core.NoNode
	NoPort          = core.NoPort
)

// NewTM returns an n×n zero traffic matrix.
func NewTM(n int) TM { return core.NewTM(n) }

// Connect is the connect() primitive (Table 1).
func Connect(a NodeID, pa PortID, b NodeID, pb PortID, ts Slice) Circuit {
	return topo.Connect(a, pa, b, pb, ts)
}

// RoundRobin materializes topo() as a single-dimensional TO round-robin
// schedule (RotorNet, Opera); returns the circuits and cycle length.
func RoundRobin(n, uplink int) ([]Circuit, int, error) { return topo.RoundRobin(n, uplink) }

// RoundRobinDim materializes topo() as a multi-dimensional TO schedule
// (Shale).
func RoundRobinDim(n, dims, uplink int) ([]Circuit, int, error) {
	return topo.RoundRobinDim(n, dims, uplink)
}

// UniformMesh returns Jupiter's uniform starting mesh.
func UniformMesh(n, uplink int) ([]Circuit, error) { return topo.UniformMesh(n, uplink) }

// Edmonds materializes topo() as c-Through-style max-weight matching.
func Edmonds(tm TM, uplink int) ([]Circuit, error) { return topo.Edmonds(tm, uplink) }

// BvN materializes topo() as a Mordia-style Birkhoff–von-Neumann schedule.
func BvN(tm TM, maxTerms, numSlices int) ([]Circuit, int, error) {
	return topo.BvN(tm, maxTerms, numSlices)
}

// Jupiter materializes topo() as Jupiter's gradual topology evolution.
func Jupiter(tm TM, prev []Circuit, n, uplink, maxMoves int) ([]Circuit, error) {
	return topo.Jupiter(tm, prev, n, uplink, maxMoves)
}

// SORN materializes the semi-oblivious skewed round-robin schedule.
func SORN(tm TM, n, uplink int, sliceCapacity float64) ([]Circuit, int, error) {
	return topo.SORN(tm, n, uplink, sliceCapacity)
}

// connIndex builds the routing view of a circuit set deployed at cycle
// length numSlices.
func connIndex(circuits []Circuit, numSlices int, n *Net) *core.ConnIndex {
	sched := &core.Schedule{
		NumSlices:     numSlices,
		SliceDuration: n.sched.SliceDuration,
		Guard:         n.sched.Guard,
		Circuits:      circuits,
	}
	return core.NewConnIndex(sched)
}

// Routing materializations (Table 1). Each takes the circuits the topology
// step produced plus the cycle length, mirroring routing([Circuit]).

// Direct materializes direct-circuit routing.
func (n *Net) Direct(circuits []Circuit, numSlices int, opt RoutingOptions) []Path {
	return routing.Direct(connIndex(circuits, numSlices, n), opt)
}

// ECMP materializes equal-cost multipath over a topology instance.
func (n *Net) ECMP(circuits []Circuit, opt RoutingOptions) []Path {
	return routing.ECMP(connIndex(circuits, 1, n), opt)
}

// WCMP materializes Jupiter-style weighted multipath.
func (n *Net) WCMP(circuits []Circuit, opt RoutingOptions) []Path {
	return routing.WCMP(connIndex(circuits, 1, n), opt)
}

// KSP materializes k-shortest-path routing (Flat-tree).
func (n *Net) KSP(circuits []Circuit, k int, opt RoutingOptions) []Path {
	return routing.KSP(connIndex(circuits, 1, n), k, opt)
}

// VLB materializes Valiant load balancing (RotorNet, Sirius).
func (n *Net) VLB(circuits []Circuit, numSlices int, opt RoutingOptions) []Path {
	return routing.VLB(connIndex(circuits, numSlices, n), opt)
}

// Opera materializes Opera's in-slice expander routing.
func (n *Net) Opera(circuits []Circuit, numSlices int, opt RoutingOptions) []Path {
	return routing.Opera(connIndex(circuits, numSlices, n), opt)
}

// UCMP materializes uniform-cost multipath routing.
func (n *Net) UCMP(circuits []Circuit, numSlices int, opt RoutingOptions) []Path {
	return routing.UCMP(connIndex(circuits, numSlices, n), opt)
}

// HOHO materializes hop-on hop-off routing.
func (n *Net) HOHO(circuits []Circuit, numSlices int, opt RoutingOptions) []Path {
	return routing.HOHO(connIndex(circuits, numSlices, n), opt)
}

// Neighbors is the neighbors() helper (Table 1).
func (n *Net) Neighbors(circuits []Circuit, numSlices int, node NodeID, ts Slice) []NodeID {
	return connIndex(circuits, numSlices, n).Neighbors(node, ts)
}

// EarliestPath is the earliest_path() helper (Table 1).
func (n *Net) EarliestPath(circuits []Circuit, numSlices int, src, dst NodeID, ts Slice, maxHop int) []Path {
	return routing.EarliestPaths(connIndex(circuits, numSlices, n), src, dst, ts,
		routing.Options{MaxHop: maxHop})
}
